"""Integration tests for HD-UNBIASED-AGG (SUM / COUNT / AVG)."""

import math

import numpy as np
import pytest

from repro.core import HDUnbiasedAgg, resolve_condition
from repro.datasets import running_example
from repro.hidden_db import (
    ConjunctiveQuery,
    HiddenDBClient,
    InvalidQueryError,
    TopKInterface,
)


def client_for(table, k):
    return HiddenDBClient(TopKInterface(table, k))


class TestConstruction:
    def test_sum_requires_measure(self, small_bool_table):
        with pytest.raises(ValueError):
            HDUnbiasedAgg(client_for(small_bool_table, 5), aggregate="sum")

    def test_unknown_measure_rejected(self, small_bool_table):
        with pytest.raises(InvalidQueryError):
            HDUnbiasedAgg(
                client_for(small_bool_table, 5), aggregate="sum", measure="XX"
            )

    def test_unknown_aggregate_rejected(self, small_bool_table):
        with pytest.raises(ValueError):
            HDUnbiasedAgg(client_for(small_bool_table, 5), aggregate="median")

    def test_count_needs_no_measure(self, small_bool_table):
        est = HDUnbiasedAgg(
            client_for(small_bool_table, 5), aggregate="count", seed=1
        )
        assert est.run_once().value > 0


class TestSum:
    def test_sum_converges(self, small_bool_table):
        truth = float(small_bool_table.measure("VALUE").sum())
        est = HDUnbiasedAgg(
            client_for(small_bool_table, 5), aggregate="sum", measure="VALUE",
            r=3, dub=8, seed=2,
        )
        result = est.run(rounds=80)
        assert result.mean == pytest.approx(truth, rel=0.25)

    def test_sum_unbiased_monte_carlo(self, small_bool_table):
        truth = float(small_bool_table.measure("VALUE").sum())
        values = []
        for i in range(300):
            est = HDUnbiasedAgg(
                client_for(small_bool_table, 5), aggregate="sum",
                measure="VALUE", r=2, dub=8, seed=50_000 + i,
            )
            values.append(est.run_once().value)
        arr = np.asarray(values)
        se = arr.std(ddof=1) / math.sqrt(len(arr))
        assert abs(arr.mean() - truth) <= 3 * se

    def test_sum_with_condition(self, small_yahoo_table):
        schema = small_yahoo_table.schema
        condition = {"MAKE": "Toyota"}
        query = resolve_condition(schema, condition)
        truth = small_yahoo_table.sum_measure(query, "PRICE")
        est = HDUnbiasedAgg(
            client_for(small_yahoo_table, 50), aggregate="sum",
            measure="PRICE", r=4, dub=32, condition=condition, seed=3,
        )
        result = est.run(rounds=40)
        assert result.mean == pytest.approx(truth, rel=0.45)


class TestCount:
    def test_count_equals_size_estimation(self, small_bool_table):
        est = HDUnbiasedAgg(
            client_for(small_bool_table, 5), aggregate="count", r=3, dub=8,
            seed=4,
        )
        result = est.run(rounds=60)
        assert result.mean == pytest.approx(300, rel=0.2)


class TestAvg:
    def test_avg_is_ratio_of_sum_and_count(self, small_bool_table):
        truth = float(small_bool_table.measure("VALUE").mean())
        est = HDUnbiasedAgg(
            client_for(small_bool_table, 5), aggregate="avg", measure="VALUE",
            r=3, dub=8, seed=5,
        )
        result = est.run(rounds=60)
        # Biased but consistent; a loose tolerance documents usability.
        assert result.mean == pytest.approx(truth, rel=0.25)

    def test_avg_round_has_two_components(self, small_bool_table):
        est = HDUnbiasedAgg(
            client_for(small_bool_table, 5), aggregate="avg", measure="VALUE",
            seed=6,
        )
        round_est = est.run_once()
        assert round_est.values.shape == (1,) or round_est.values.shape == (2,)
        assert round_est.values.shape == (2,)

    def test_avg_statistic_handles_zero_count(self, small_bool_table):
        est = HDUnbiasedAgg(
            client_for(small_bool_table, 5), aggregate="avg", measure="VALUE",
            seed=7,
        )
        assert math.isnan(est._statistic(np.array([5.0, 0.0])))


class TestMeasureSemantics:
    def test_exact_when_root_valid(self):
        table = running_example()
        est = HDUnbiasedAgg(
            client_for(table, 10), aggregate="sum", measure="VALUE", seed=8
        )
        # All 6 tuples fit one page: exact total of 10+...+60.
        assert est.run_once().value == pytest.approx(210.0)
