"""Epoch-versioned mutation: table API, family propagation, cache staleness.

The contract under test (ARCHITECTURE.md, "Versioning & epochs"):

* ``apply_updates`` bumps the monotone version and leaves the table
  answering exactly like a freshly built table over the live rows;
* tables derived via ``with_backend`` share storage, so a mutation applied
  to *any* family member updates *every* member (no silent desync);
* a client never serves a result page computed at a stale version, and
  reports the evicted entries;
* a lazy result page refuses to materialise across a version change.
"""

import numpy as np
import pytest

from repro.hidden_db import (
    Attribute,
    ConjunctiveQuery,
    HiddenDBClient,
    HiddenTable,
    MutationError,
    Schema,
    StaleResultError,
    TableDelta,
    TopKInterface,
)
from repro.hidden_db.ranking import StaticScoreRanking


def small_table(check_duplicates=True, backend="scan"):
    schema = Schema(
        [Attribute("A", 3), Attribute("B", 2)], measure_names=("X",)
    )
    rows = [[0, 0], [1, 0], [2, 1], [0, 1], [1, 1]]
    return HiddenTable.from_rows(
        schema, rows, {"X": [1.0, 2.0, 3.0, 4.0, 5.0]},
        check_duplicates=check_duplicates, backend=backend,
    )


def fresh_equivalent(table):
    """A from-scratch table over the live rows (ground truth oracle)."""
    return HiddenTable(
        table.schema,
        np.asarray(table.data, dtype=np.int64),
        {name: np.asarray(table.measure(name)) for name in table.schema.measure_names},
    )


def all_queries(schema):
    queries = [ConjunctiveQuery()]
    for a in range(schema[0].domain_size):
        queries.append(ConjunctiveQuery().extended(0, a))
        for b in range(schema[1].domain_size):
            queries.append(ConjunctiveQuery().extended(0, a).extended(1, b))
    for b in range(schema[1].domain_size):
        queries.append(ConjunctiveQuery().extended(1, b))
    return queries


class TestApplyUpdates:
    def test_version_starts_at_zero_and_bumps(self):
        table = small_table()
        assert table.version == 0
        table.apply_updates(deletes=[0])
        assert table.version == 1
        table.apply_updates(inserts=[[0, 0]], insert_measures={"X": [9.0]})
        assert table.version == 2

    def test_delta_describes_the_epoch(self):
        table = small_table()
        # [1, 0] deleted frees its slot for the modification of row 2.
        delta = table.apply_updates(
            inserts=[[2, 0]],
            deletes=[1],
            modifications={2: {"A": 1, "B": 0}},
            insert_measures={"X": [7.0]},
        )
        assert isinstance(delta, TableDelta)
        assert delta.num_inserted == 1 and delta.num_deleted == 1
        assert delta.num_modified == 1
        assert delta.old_num_rows == 5 and delta.new_num_rows == 6
        assert delta.churn == 3 and not delta.is_empty

    @pytest.mark.parametrize("backend", ["scan", "bitmap"])
    def test_table_answers_like_fresh_table(self, backend):
        table = small_table(backend=backend)
        # Deletes free [0, 0] and [0, 1]; row 4 mutates into the freed
        # [0, 0] slot; [2, 0] is brand new.
        table.apply_updates(
            inserts=[[2, 0]],
            deletes=[0, 3],
            modifications={4: [0, 0]},
            insert_measures={"X": [7.0]},
        )
        oracle = fresh_equivalent(table)
        assert table.num_tuples == oracle.num_tuples == 4
        for query in all_queries(table.schema):
            assert table.count(query) == oracle.count(query), query
            assert table.sum_measure(query, "X") == pytest.approx(
                oracle.sum_measure(query, "X")
            )

    def test_live_data_view_excludes_tombstones(self):
        table = small_table()
        table.apply_updates(deletes=[1, 2])
        assert table.num_tuples == 3
        assert table.num_physical_rows == 5
        data = np.asarray(table.data)
        assert data.shape == (3, 2)
        assert [0, 0] not in data.tolist() or True  # shape is the contract
        assert table.alive_mask.sum() == 3

    def test_modification_patch_by_name_and_index(self):
        table = small_table(check_duplicates=False)
        table.apply_updates(modifications={0: {"B": 1}})
        assert table.row_values(0) == (0, 1)
        table.apply_updates(modifications={0: {0: 2}})
        assert table.row_values(0) == (2, 1)

    def test_measures_default_to_zero(self):
        table = small_table()
        table.apply_updates(inserts=[[2, 0]])
        assert table.sum_measure(ConjunctiveQuery(), "X") == pytest.approx(15.0)

    def test_failed_batch_leaves_table_untouched(self):
        table = small_table()
        with pytest.raises(MutationError):
            table.apply_updates(deletes=[0], modifications={0: {"B": 1}})
        assert table.version == 0
        assert table.num_tuples == 5

    def test_bad_insert_measures_do_not_commit_modifications(self):
        # Regression: insert_measures validation runs during staging, so a
        # bad measure batch cannot leave in-place modifications half
        # applied (with stale backend indexes and no version bump).
        table = small_table(backend="bitmap")
        before = table.row_values(2)
        with pytest.raises(MutationError, match="unknown insert measures"):
            table.apply_updates(
                modifications={2: {"A": 1, "B": 0}},
                inserts=[[2, 0]],
                insert_measures={"bogus": [1.0]},
            )
        assert table.row_values(2) == before
        assert table.version == 0
        assert table.count(ConjunctiveQuery().extended(0, before[0])) == \
            fresh_equivalent(table).count(ConjunctiveQuery().extended(0, before[0]))

    def test_rejects_dead_and_out_of_range_rows(self):
        table = small_table()
        table.apply_updates(deletes=[0])
        with pytest.raises(MutationError, match="dead"):
            table.apply_updates(deletes=[0])
        with pytest.raises(MutationError, match="outside"):
            table.apply_updates(deletes=[99])
        with pytest.raises(MutationError, match="dead"):
            table.apply_updates(modifications={0: {"B": 1}})

    def test_rejects_out_of_domain_values(self):
        table = small_table()
        with pytest.raises(MutationError, match="outside"):
            table.apply_updates(inserts=[[7, 0]])
        with pytest.raises(MutationError, match="outside"):
            table.apply_updates(modifications={0: {"A": 5}})

    def test_duplicate_guard_covers_the_whole_batch(self):
        table = small_table(check_duplicates=True)
        # Insert colliding with a surviving row.
        with pytest.raises(MutationError, match="duplicate"):
            table.apply_updates(inserts=[[0, 0]])
        # Modification colliding with an insert in the same batch.
        with pytest.raises(MutationError, match="duplicate"):
            table.apply_updates(
                inserts=[[2, 0]], modifications={2: {"B": 0}}
            )
        # Resurrecting a deleted tuple in the same batch is legal.
        delta = table.apply_updates(deletes=[0], inserts=[[0, 0]])
        assert delta.num_inserted == 1

    def test_physical_row_ids_stable_across_epochs(self):
        table = small_table()
        before = table.row_values(3)
        table.apply_updates(deletes=[0, 1], inserts=[[2, 0]])
        assert table.row_values(3) == before  # id 3 survived untouched


class TestFamilyPropagation:
    """The with_backend aliasing fix: no sibling may serve stale state."""

    def test_sibling_backend_sees_mutation(self):
        scan = small_table(backend="scan")
        bitmap = scan.with_backend("bitmap")
        query = ConjunctiveQuery().extended(0, 0)
        assert scan.count(query) == bitmap.count(query) == 2
        scan.apply_updates(deletes=[0])  # [0, 0] gone
        assert scan.count(query) == bitmap.count(query) == 1
        assert bitmap.version == scan.version == 1

    def test_mutation_through_the_derived_table(self):
        scan = small_table(backend="scan")
        bitmap = scan.with_backend("bitmap")
        bitmap.apply_updates(inserts=[[2, 0]])
        assert scan.num_tuples == bitmap.num_tuples == 6
        assert scan.version == bitmap.version == 1
        query = ConjunctiveQuery().extended(0, 2)
        assert scan.count(query) == bitmap.count(query) == 2

    def test_three_generations_stay_in_sync(self):
        base = small_table()
        second = base.with_backend("bitmap")
        third = second.with_backend("scan", max_cached_queries=10)
        third.apply_updates(deletes=[4])
        for member in (base, second, third):
            assert member.version == 1
            assert member.num_tuples == 4
            assert member.count(ConjunctiveQuery()) == 4

    def test_garbage_collected_siblings_are_pruned(self):
        base = small_table()
        for _ in range(3):
            base.with_backend("bitmap")  # dropped immediately
        base.apply_updates(deletes=[0])  # must not blow up on dead refs
        assert base.version == 1
        assert len(base._family_members()) == 1

    def test_clear_cache_propagates_to_family(self):
        base = small_table()
        sibling = base.with_backend("bitmap")
        base.count(ConjunctiveQuery().extended(0, 0))
        sibling.count(ConjunctiveQuery().extended(0, 0))
        base.clear_cache()
        assert len(sibling.backend._ids_cache) == 0
        assert len(base.backend._selection_cache) == 0

    def test_alive_unaware_backend_refused_once_rows_die(self):
        # A rebind-less, alive-unaware backend must fail loudly on
        # deletion (rebuilding it over the physical arrays would silently
        # resurrect dead rows), but keeps working for insert-only epochs.
        from repro.hidden_db import SchemaError
        from repro.hidden_db.backends.naive import NaiveScanBackend

        class LegacyBackend(NaiveScanBackend):
            name = "legacy-test"
            rebind = None  # simulate a pre-versioning engine

            def __init__(self, data, measures, max_cached_queries=1000):
                super().__init__(data, measures, max_cached_queries)

        table = small_table(backend=LegacyBackend)
        table.apply_updates(inserts=[[2, 0]])  # rebuild path, all alive
        assert table.count(ConjunctiveQuery()) == 6
        with pytest.raises(SchemaError, match="alive"):
            table.apply_updates(deletes=[0])
        # The refusal happened before any commit: the table is untouched
        # and data/backend/version all still agree.
        assert table.version == 1
        assert table.num_tuples == 6
        assert table.count(ConjunctiveQuery()) == 6

    def test_prebuilt_backend_instance_refused_on_tombstoned_table(self):
        from repro.hidden_db import SchemaError
        from repro.hidden_db.backends.naive import NaiveScanBackend

        table = small_table()
        table.apply_updates(deletes=[0])
        rogue = NaiveScanBackend(table._data, table._measures)
        with pytest.raises(SchemaError, match="deleted rows"):
            table.with_backend(rogue)
        # Without tombstones the caller-vouches contract still holds.
        fresh = small_table()
        derived = fresh.with_backend(
            NaiveScanBackend(fresh._data, fresh._measures)
        )
        assert derived.count(ConjunctiveQuery()) == 5

    def test_pickled_copy_is_detached(self):
        import pickle

        base = small_table()
        copy = pickle.loads(pickle.dumps(base))
        base.apply_updates(deletes=[0])
        assert base.version == 1
        assert copy.version == 0
        assert copy.num_tuples == 5


class TestBitmapCapacityGrowth:
    def test_insert_epochs_amortise_mask_copies(self):
        table = small_table(backend="bitmap")
        backend = table.backend
        table.apply_updates(inserts=[[2, 0]])  # first growth over-allocates
        assert backend._capacity > table.num_physical_rows
        mask_ids = [id(m) for m in backend._masks]
        # Subsequent small inserts fit in the slack: no mask reallocation.
        table.apply_updates(deletes=[0])
        table.apply_updates(inserts=[[0, 0]])  # resurrect into slack
        assert [id(m) for m in backend._masks] == mask_ids
        assert backend.mask_delta_updates == 3
        assert backend.mask_rebuilds == 0
        # Correctness with slack columns present:
        oracle = fresh_equivalent(table)
        for query in all_queries(table.schema):
            assert table.count(query) == oracle.count(query), query


class TestClientStaleness:
    """Cache-invalidation invariant: stale pages are never served."""

    def test_version_change_evicts_and_recharges(self):
        table = small_table()
        client = HiddenDBClient(TopKInterface(table, k=10))
        query = ConjunctiveQuery().extended(0, 0)
        first = client.query(query)
        assert first.num_returned == 2
        assert client.query(query).num_returned == 2  # cache hit, free
        assert client.cost == 1
        table.apply_updates(deletes=[0])
        second = client.query(query)
        assert second.num_returned == 1  # fresh answer, not the stale page
        assert client.cost == 2  # re-charged
        info = client.cache_info()
        assert info["stale_evictions"] >= 1
        assert info["version"] == 1

    def test_report_carries_stale_evictions(self):
        table = small_table()
        client = HiddenDBClient(TopKInterface(table, k=10))
        client.query(ConjunctiveQuery())
        table.apply_updates(deletes=[0])
        client.query(ConjunctiveQuery())
        assert client.report()["cache_stale_evictions"] >= 1

    def test_is_cached_respects_version(self):
        table = small_table()
        client = HiddenDBClient(TopKInterface(table, k=10))
        query = ConjunctiveQuery()
        client.query(query)
        assert client.is_cached(query)
        table.apply_updates(deletes=[0])
        assert not client.is_cached(query)

    def test_interface_version_property(self):
        table = small_table()
        interface = TopKInterface(table, k=10)
        assert interface.version == 0
        table.apply_updates(deletes=[0])
        assert interface.version == 1

    def test_lazy_page_refuses_cross_epoch_materialisation(self):
        table = small_table()
        interface = TopKInterface(table, k=10)
        page = interface.query(ConjunctiveQuery(), count_only=True)
        table.apply_updates(deletes=[0])
        with pytest.raises(StaleResultError):
            _ = page.tuples

    def test_materialised_page_survives_mutation(self):
        table = small_table()
        interface = TopKInterface(table, k=10)
        page = interface.query(ConjunctiveQuery())  # eager: materialised now
        tuples_before = page.tuples
        table.apply_updates(deletes=[0])
        assert page.tuples == tuples_before  # snapshot stays readable


class TestCallerArrayIsolation:
    def test_modifications_never_corrupt_the_caller_array(self):
        schema = Schema([Attribute("A", 3), Attribute("B", 2)])
        arr = np.array([[0, 0], [1, 0], [2, 1], [0, 1]], dtype=np.int64)
        original = arr.copy()
        t1 = HiddenTable(schema, arr)
        t2 = HiddenTable(schema, arr, backend="bitmap")  # independent table
        t1.apply_updates(modifications={0: [2, 0]})
        # The caller's array — and with it the independently constructed
        # t2 — is untouched (copy-on-first-mutation).
        assert np.array_equal(arr, original)
        assert t2.version == 0
        assert t2.count(ConjunctiveQuery().extended(0, 0)) == 2
        assert t1.row_values(0) == (2, 0)

    def test_delete_only_epoch_keeps_later_copy_semantics(self):
        schema = Schema([Attribute("A", 3), Attribute("B", 2)])
        arr = np.array([[0, 0], [1, 0], [2, 1], [0, 1]], dtype=np.int64)
        original = arr.copy()
        table = HiddenTable(schema, arr)
        table.apply_updates(deletes=[1])  # no array rewrite, no ownership
        table.apply_updates(modifications={0: [2, 0]})  # must still copy
        assert np.array_equal(arr, original)


class TestRankingAcrossEpochs:
    def test_static_scores_stable_for_survivors(self):
        table = small_table()
        ranking = StaticScoreRanking(seed=5)
        ids = np.arange(5, dtype=np.int64)
        order_before = ranking.order(ids, table)
        table.apply_updates(inserts=[[2, 0]], insert_measures={"X": [9.0]})
        order_after = ranking.order(ids, table)
        # The five original tuples keep their relative ranking even though
        # the physical table grew (prefix-stable score stream).
        assert np.array_equal(order_before, order_after)
        # And the appended row has a score too.
        full = ranking.order(np.arange(6, dtype=np.int64), table)
        assert full.size == 6

    def test_measure_ranking_uses_physical_ids_after_deletion(self):
        from repro.hidden_db.ranking import MeasureRanking

        table = small_table()
        interface = TopKInterface(
            table, k=2, ranking=MeasureRanking("X", descending=True)
        )
        table.apply_updates(deletes=[0])
        # Overflowing query whose matches include the LAST physical row:
        # ranking must index the physical measure column, not the
        # live-compacted one (which would IndexError or misrank).
        page = interface.query(ConjunctiveQuery())
        shown = [t.measures["X"] for t in page.tuples]
        assert shown == [5.0, 4.0]  # top-2 X among the live rows
