"""Level-synchronous cohort execution: bit-identity and backend savings.

The cohort engine (:mod:`repro.core.cohort`) interleaves a wave of
rounds' probe plans and answers each level's grouped probes with one
bulk backend pass, memoising identical ``(query, version)`` pages within
the wave.  Its contract is *exact* equivalence with the per-round path:
same estimates, same per-round charge ledgers, same cache statistics, at
every worker count and under both executors.  These tests pin that
contract, the front-door report bytes, the backend-invocation savings
the memo exists for, and the serial fallbacks (wrapped interfaces, hard
query limits).
"""

import json

import pytest

from repro.core import HDUnbiasedAgg, HDUnbiasedSize
from repro.datasets import yahoo_auto
from repro.hidden_db import (
    FlakyInterface,
    HiddenDBClient,
    QueryCounter,
    TopKInterface,
)

#: (workers, executor) cells; workers=1 on a thread pool is the
#: sequential schedule (the engine runs the lone worker inline).
MATRIX = [
    (1, "thread"),
    (2, "thread"),
    (8, "thread"),
    (2, "process"),
    (8, "process"),
]


@pytest.fixture(scope="module")
def table():
    return yahoo_auto(m=1_000, seed=5)


def make_estimator(table, cohort, seed=7):
    client = HiddenDBClient(TopKInterface(table, 50))
    return HDUnbiasedSize(client, r=2, dub=16, seed=seed, cohort=cohort)


def _facts(result):
    return (
        result.estimates,
        result.total_cost,
        result.mean,
        result.ci95,
        [r.cost for r in result.raw_rounds],
        [r.walks for r in result.raw_rounds],
    )


class TestDeterminismMatrix:
    def test_every_cell_matches_the_serial_reference(self, table):
        """{cohort on/off} x {workers 1/2/8} x {thread/process} agree.

        The reference cell is cohort *off* at one worker — the original
        per-round serial path.  Every other cell (including every cohort
        cell) must reproduce its estimates AND its per-round cost/walk
        ledgers bit-for-bit.
        """
        reference = None
        for cohort in (False, True):
            for workers, executor in MATRIX:
                session = make_estimator(table, cohort).parallel_session(
                    workers, seed=99, executor=executor
                )
                try:
                    facts = _facts(session.run(rounds=10))
                finally:
                    session.close()
                if reference is None:
                    reference = facts
                else:
                    assert facts == reference, (cohort, workers, executor)

    def test_agg_estimator_cohort_invariant(self, table):
        results = []
        for cohort in (False, True):
            client = HiddenDBClient(TopKInterface(table, 50))
            estimator = HDUnbiasedAgg(
                client, aggregate="sum", measure="PRICE",
                r=2, dub=16, seed=31, cohort=cohort,
            )
            results.append(estimator.run(rounds=8, workers=4))
        assert results[0].estimates == results[1].estimates
        assert results[0].total_cost == results[1].total_cost

    def test_front_door_report_bytes_cohort_invariant(self, table):
        """Identical report JSON through ``repro.api`` either way.

        The specs differ only in the ``cohort`` knob, so the embedded
        spec is excluded from the byte comparison; everything measured
        (estimates, CIs, costs, trajectory) must serialize identically.
        """
        from repro.api import (
            DatasetSpec, Estimation, EstimationSpec, MethodSpec,
            RegimeSpec, TargetSpec,
        )

        payloads = []
        for cohort in (False, None):
            spec = EstimationSpec(
                target=TargetSpec(
                    dataset=DatasetSpec(name="iid", m=500, seed=3), k=20
                ),
                regime=RegimeSpec(rounds=6, seed=3, workers=2),
                method=MethodSpec(cohort=cohort),
            )
            payload = Estimation(spec).run().to_dict()
            payload.pop("spec")
            payloads.append(json.dumps(payload, sort_keys=True))
        assert payloads[0] == payloads[1]


class _BackendSpy:
    """Counts backend dispatches without touching the answers."""

    def __init__(self, backend):
        self.calls = 0
        for name in (
            "selection_count",
            "selection_counts_many",
            "selection_ids",
        ):
            original = getattr(backend, name)

            def counted(*args, _original=original, **kwargs):
                self.calls += 1
                return _original(*args, **kwargs)

            setattr(backend, name, counted)


class TestProbeMemo:
    def test_memo_cuts_backend_dispatches_not_charges(self):
        """Charges are untouched; backend invocations drop.

        Every round's counter must be charged exactly as the serial walk
        charges it (the ledger equality), while the cohort's grouped
        answering + memo performs strictly fewer backend dispatches than
        one-probe-at-a-time execution.
        """
        dispatches = {}
        ledgers = {}
        for cohort in (False, True):
            table = yahoo_auto(m=1_000, seed=5)  # fresh caches per arm
            spy = _BackendSpy(table.backend)
            session = make_estimator(table, cohort).parallel_session(
                1, seed=99
            )
            try:
                result = session.run(rounds=12)
            finally:
                session.close()
            dispatches[cohort] = spy.calls
            ledgers[cohort] = [r.cost for r in result.raw_rounds]
        assert ledgers[True] == ledgers[False]
        assert dispatches[True] < dispatches[False]


class TestSerialFallback:
    def test_flaky_interface_falls_back_and_matches(self, table):
        """A wrapped interface cannot batch; the cohort must not try.

        ``FlakyInterface`` has no ``classify_many`` — its seeded failure
        stream must see submissions one at a time — so cohort rounds run
        through plain ``run_once`` and stay bit-identical to cohort off.
        """
        facts = []
        for cohort in (False, True):
            flaky = FlakyInterface(
                TopKInterface(table, 50), failure_rate=0.2, seed=17
            )
            client = HiddenDBClient(flaky, retries=50)
            estimator = HDUnbiasedSize(
                client, r=2, dub=16, seed=7, cohort=cohort
            )
            session = estimator.parallel_session(1, seed=99)
            try:
                facts.append(_facts(session.run(rounds=6)))
            finally:
                session.close()
        assert facts[0] == facts[1]

    def test_hard_limit_falls_back_and_matches(self, table):
        """A hard query limit forces the literal loop's semantics.

        A mid-batch ``QueryLimitExceeded`` must leave exactly the serial
        loop's counter/cache state behind, so limit-carrying rounds run
        through ``run_once`` inside the cohort.  With a generous limit the
        fallback is observable only through equivalence: outcome values,
        costs and client reports all match the serial loop exactly.
        """
        from repro.core.cohort import run_cohort

        def factory(seed):
            client = HiddenDBClient(
                TopKInterface(table, 50, counter=QueryCounter(limit=10_000))
            )
            return HDUnbiasedSize(client, r=2, dub=16, seed=seed)

        seeds = [11, 12, 13, 14]
        cohort_out = run_cohort(factory, seeds)
        for seed, (outcome, report) in zip(seeds, cohort_out):
            estimator = factory(seed)
            serial = estimator.run_once()
            assert outcome.values.tolist() == serial.values.tolist()
            assert outcome.cost == serial.cost
            assert outcome.walks == serial.walks
            assert report == estimator.client.report()
