"""Property-based tests (hypothesis) for core invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import uniform_walk_probabilities
from repro.core.drilldown import Walker
from repro.core.weights import UniformWeights, WeightStore
from repro.hidden_db import (
    Attribute,
    ConjunctiveQuery,
    HiddenDBClient,
    HiddenTable,
    Schema,
    TopKInterface,
)
from repro.utils.stats import RunningStats, StreamingMeanSeries

# -- strategies ------------------------------------------------------------


@st.composite
def small_tables(draw):
    """Random duplicate-free categorical tables (2-4 attrs, fanouts 2-4)."""
    n_attrs = draw(st.integers(2, 4))
    fanouts = [draw(st.integers(2, 4)) for _ in range(n_attrs)]
    domain = 1
    for f in fanouts:
        domain *= f
    m = draw(st.integers(1, min(domain, 30)))
    seed = draw(st.integers(0, 2**20))
    rng = np.random.default_rng(seed)
    # Sample m distinct row indices of the full domain, decode mixed-radix.
    choices = rng.choice(domain, size=m, replace=False)
    rows = []
    for code in choices:
        row = []
        rest = int(code)
        for f in fanouts:
            row.append(rest % f)
            rest //= f
        rows.append(row)
    schema = Schema([Attribute(f"A{i}", f) for i, f in enumerate(fanouts)])
    return HiddenTable.from_rows(schema, rows)


# -- interface invariants ----------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(small_tables(), st.integers(1, 6), st.integers(0, 2**16))
def test_interface_outcome_invariants(table, k, seed):
    """|returned| = min(k, |Sel|) and flags match exact counts."""
    rng = np.random.default_rng(seed)
    iface = TopKInterface(table, k)
    for _ in range(5):
        query = ConjunctiveQuery()
        for attr in range(table.num_attributes):
            if rng.random() < 0.5:
                query = query.extended(
                    attr, int(rng.integers(table.schema[attr].domain_size))
                )
        result = iface.query(query)
        exact = table.count(query)
        assert result.num_returned == min(k, exact)
        assert result.underflow == (exact == 0)
        assert result.overflow == (exact > k)
        assert result.valid == (1 <= exact <= k)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.data_too_large])
@given(small_tables(), st.integers(1, 4), st.integers(0, 2**16))
def test_walk_terminates_with_valid_probability(table, k, seed):
    """Every drill down ends at a top-valid node with p in (0, 1]."""
    if table.count(ConjunctiveQuery()) <= k:
        return  # root valid: no walk happens
    client = HiddenDBClient(TopKInterface(table, k))
    walker = Walker(client, UniformWeights(), np.random.default_rng(seed))
    order = list(range(table.num_attributes))
    out = walker.drill_down(ConjunctiveQuery(), order)
    assert 0.0 < out.probability <= 1.0
    assert out.result is not None and out.result.valid
    # The terminal node's parent overflows (top-validity).
    parent = out.query.parent()
    assert table.count(parent) > k


@settings(max_examples=25, deadline=None)
@given(small_tables(), st.integers(1, 4))
def test_exact_probabilities_sum_to_one(table, k):
    """The uniform-walk reach probabilities form a distribution over
    top-valid nodes, and counts partition the table."""
    order = list(range(table.num_attributes))
    probs = uniform_walk_probabilities(table, k, order)
    m = table.count(ConjunctiveQuery())
    if m == 0:
        assert probs == {}
        return
    assert sum(p for p, _ in probs.values()) == pytest.approx(1.0)
    assert sum(c for _, c in probs.values()) == m


@settings(max_examples=20, deadline=None)
@given(small_tables(), st.integers(1, 3), st.integers(0, 2**16))
def test_estimator_expectation_matches_exact_distribution(table, k, seed):
    """E[estimate] computed from the exact walk distribution equals m —
    Theorem 1 holds for arbitrary random tables."""
    order = list(range(table.num_attributes))
    probs = uniform_walk_probabilities(table, k, order)
    m = table.count(ConjunctiveQuery())
    if not probs:
        assert m == 0
        return
    expectation = sum(p * (c / p) for p, c in probs.values())
    assert expectation == pytest.approx(m)


# -- weight store invariants -------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.integers(2, 8),
    st.lists(st.tuples(st.integers(0, 7), st.floats(0.1, 1000)), max_size=20),
    st.sets(st.integers(0, 7), max_size=7),
)
def test_weight_distribution_is_valid(fanout, masses, empties):
    """Branch distributions always sum to 1, are non-negative, vanish on
    known-empty branches and stay positive elsewhere."""
    store = WeightStore()
    key = frozenset()
    empties = {e for e in empties if e < fanout}
    if len(empties) == fanout:
        empties.pop()
    for value in empties:
        store.mark_empty(key, 0, fanout, value)
    for value, mass in masses:
        if value < fanout and value not in empties:
            store.add_mass(key, 0, fanout, value, mass)
    dist = store.branch_distribution(key, 0, fanout)
    assert dist.shape == (fanout,)
    assert dist.sum() == pytest.approx(1.0)
    assert (dist >= 0).all()
    for value in range(fanout):
        if value in empties:
            assert dist[value] == 0.0
        else:
            assert dist[value] > 0.0


# -- statistics invariants ----------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
def test_running_stats_matches_numpy(xs):
    rs = RunningStats()
    rs.extend(xs)
    assert rs.mean == pytest.approx(float(np.mean(xs)), rel=1e-6, abs=1e-6)
    assert rs.variance == pytest.approx(
        float(np.var(xs, ddof=1)), rel=1e-6, abs=1e-5
    )


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 1000), st.floats(-100, 100)),
                min_size=1, max_size=50))
def test_series_step_interpolation(points):
    points = sorted(points, key=lambda t: t[0])
    series = StreamingMeanSeries()
    for x, v in points:
        series.append(x, v)
    # At any x >= last point, the last value is returned.
    assert series.value_at(points[-1][0] + 1) == pytest.approx(points[-1][1])
    # Before the first point: nan.
    assert math.isnan(series.value_at(points[0][0] - 1))


# -- query canonicalisation ---------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 3)), max_size=6,
                unique_by=lambda t: t[0]))
def test_query_equality_is_order_independent(predicates):
    import random

    shuffled = predicates[:]
    random.Random(0).shuffle(shuffled)
    a = ConjunctiveQuery(predicates)
    b = ConjunctiveQuery(shuffled)
    assert a == b
    assert hash(a) == hash(b)
    assert a.num_predicates == len(predicates)
