"""Unit tests for the stratified estimator."""

import numpy as np
import pytest

from repro.core import StratifiedEstimator
from repro.datasets import yahoo_auto
from repro.hidden_db import (
    HiddenDBClient,
    OnlineFormSimulator,
    TopKInterface,
)


@pytest.fixture(scope="module")
def table():
    return yahoo_auto(m=3_000, seed=61)


def plain_client(table, k=50):
    return HiddenDBClient(TopKInterface(table, k))


class TestStratified:
    def test_total_approximates_size(self, table):
        estimator = StratifiedEstimator(
            plain_client(table), stratify_by="MAKE",
            rounds_per_stratum=4, r=3, dub=32, seed=1,
        )
        result = estimator.run()
        assert result.total == pytest.approx(3_000, rel=0.3)
        assert len(result.strata) == 16

    def test_stratum_lookup_by_label(self, table):
        estimator = StratifiedEstimator(
            plain_client(table), stratify_by="MAKE",
            rounds_per_stratum=2, r=2, dub=32, seed=2,
        )
        result = estimator.run()
        toyota = result.stratum("Toyota")
        assert toyota.estimate >= 0
        with pytest.raises(KeyError):
            result.stratum("DeLorean")

    def test_per_stratum_estimates_match_ground_truth(self, table):
        # The biggest stratum should be estimated within a loose factor.
        make_counts = np.bincount(table.data[:, 0], minlength=16)
        biggest = int(make_counts.argmax())
        estimator = StratifiedEstimator(
            plain_client(table), stratify_by="MAKE",
            rounds_per_stratum=6, r=3, dub=32, seed=3,
        )
        result = estimator.run()
        stratum = next(s for s in result.strata if s.value == biggest)
        assert stratum.estimate == pytest.approx(
            make_counts[biggest], rel=0.5
        )

    def test_works_through_required_attribute_form(self, table):
        # The whole point: the online form rejects unconditioned queries,
        # but stratifying on the required attribute satisfies it.
        schema = table.schema
        simulator = OnlineFormSimulator(
            TopKInterface(table, 50),
            required_attributes=(schema.index_of("MAKE"),),
            daily_limit=None,
        )
        client = HiddenDBClient(simulator)
        estimator = StratifiedEstimator(
            client, stratify_by="MAKE", rounds_per_stratum=3,
            r=3, dub=32, seed=4,
        )
        result = estimator.run()
        assert result.total == pytest.approx(3_000, rel=0.35)

    def test_sum_aggregate(self, table):
        truth = float(table.measure("PRICE").sum())
        estimator = StratifiedEstimator(
            plain_client(table), stratify_by="MAKE", aggregate="sum",
            measure="PRICE", rounds_per_stratum=4, r=3, dub=32, seed=5,
        )
        result = estimator.run()
        assert result.total == pytest.approx(truth, rel=0.35)

    def test_cost_accounting(self, table):
        client = plain_client(table)
        estimator = StratifiedEstimator(
            client, stratify_by="FUEL_TYPE", rounds_per_stratum=2,
            r=2, dub=32, seed=6,
        )
        result = estimator.run()
        assert result.total_cost == client.cost
        assert result.total_cost == sum(s.cost for s in result.strata)

    def test_validation(self, table):
        with pytest.raises(ValueError):
            StratifiedEstimator(
                plain_client(table), stratify_by="MAKE",
                rounds_per_stratum=0,
            )
