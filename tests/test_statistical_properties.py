"""Statistical correctness battery: property-style unbiasedness checks.

For every aggregate the front door serves (size / count / sum / avg) and
a seeded grid of interface and data shapes — result-page size *k*,
attribute-probability *skew*, inter-attribute *correlation* — the battery
replays N independent seeded estimations and asserts the estimator-quality
criteria the paper (and the *Get the Most out of Your Sample* follow-up)
promise:

* **Unbiasedness** — the replicate mean must fall inside a z-interval
  around the exact ground truth (z = ``Z_BOUND`` standard errors of the
  replicate mean).  AVG is the paper's biased-but-consistent ratio
  estimator, so it gets a relative-error bound instead.
* **CI calibration** — the empirical coverage of the per-run 95% CIs must
  reach nominal minus ``COVERAGE_TOL`` (small-round normal intervals
  undercover slightly; the tolerance is the budget for that).

Everything is seeded, so each check is deterministic: it either always
passes or flags a real estimator regression.  Tier-1 runs one fast
configuration; the full grid runs under the opt-in ``slow`` marker
(``pytest --runslow``), which CI exercises in a dedicated job.
"""

import math

import numpy as np
import pytest

from repro.api import (
    AggregateSpec,
    DatasetSpec,
    Estimation,
    EstimationSpec,
    RegimeSpec,
    TargetSpec,
)
from repro.hidden_db.schema import Attribute, Schema
from repro.hidden_db.table import HiddenTable

#: Replicate mean must sit within this many SEs of the truth.
Z_BOUND = 3.5
#: Empirical 95%-CI coverage may undershoot nominal by at most this.
COVERAGE_TOL = 0.20
#: AVG (ratio estimator, biased-but-consistent): relative-error bound.
AVG_RELATIVE_TOL = 0.05

M = 280
BASE_ATTRS = 12
TABLE_SEED = 77
REPLICATE_SEED = 500

#: (k, skew, correlation) — the fast subset tier-1 always runs.
FAST_GRID = [(16, 0.3, 0.0)]
#: The exhaustive grid (includes the fast point; slow-marked).
FULL_GRID = [
    (8, 0.0, 0.0),
    (8, 0.6, 0.0),
    (16, 0.3, 0.0),
    (16, 0.3, 0.8),
    (32, 0.0, 0.5),
    (32, 0.6, 0.5),
]

AGGREGATES = {
    "size": AggregateSpec(),
    "count": AggregateSpec(kind="count", condition={"A1": 1}),
    "sum": AggregateSpec(kind="sum", measure="VALUE"),
    "avg": AggregateSpec(kind="avg", measure="VALUE"),
}

_table_cache = {}


def grid_table(skew: float, correlation: float) -> HiddenTable:
    """A duplicate-free Boolean table at one (skew, correlation) point.

    *skew* interpolates the per-attribute 1-probabilities from uniform
    0.5 toward a 0.2..0.8 ramp; *correlation* appends three extra
    attributes, each a noisy copy of a base attribute (flip probability
    ``(1 - correlation) / 2``), so drill downs meet correlated splits.
    Appending columns keeps the base rows' distinctness, so the paper's
    no-duplicates model holds by construction.
    """
    key = (skew, correlation)
    if key in _table_cache:
        return _table_cache[key]
    rng = np.random.default_rng(TABLE_SEED)
    ramp = np.linspace(0.2, 0.8, BASE_ATTRS)
    probs = (1 - skew) * 0.5 + skew * ramp
    data = (rng.random((M, BASE_ATTRS)) < probs).astype(np.int8)
    for _ in range(200):
        _, first = np.unique(data, axis=0, return_index=True)
        if first.size == M:
            break
        dup = np.ones(M, dtype=bool)
        dup[first] = False
        data[dup] = (
            rng.random((int(dup.sum()), BASE_ATTRS)) < probs
        ).astype(np.int8)
    else:  # pragma: no cover - seeds are fixed
        raise ValueError("deduplication did not converge")
    if correlation > 0:
        flips = (rng.random((M, 3)) < (1 - correlation) / 2).astype(np.int8)
        data = np.concatenate([data, data[:, :3] ^ flips], axis=1)
    value = rng.lognormal(mean=3.0, sigma=0.5, size=M)
    schema = Schema(
        [Attribute(f"A{i + 1}", 2) for i in range(data.shape[1])],
        measure_names=("VALUE",),
    )
    table = HiddenTable(schema, data, {"VALUE": value}, check_duplicates=True)
    _table_cache[key] = table
    return table


def replicate(kind: str, k: int, skew: float, correlation: float,
              replications: int, rounds: int):
    """N seeded facade runs of one aggregate; returns (reports, truth)."""
    table = grid_table(skew, correlation)
    spec = EstimationSpec(
        target=TargetSpec(dataset=DatasetSpec(name="custom"), k=k),
        aggregate=AGGREGATES[kind],
        regime=RegimeSpec(rounds=rounds, seed=0),
    )
    truth = Estimation(spec, table=table).ground_truth()
    reports = [
        Estimation(spec.with_seed(REPLICATE_SEED + i), table=table).run()
        for i in range(replications)
    ]
    return reports, truth


def check_battery(kind: str, k: int, skew: float, correlation: float,
                  replications: int, rounds: int) -> None:
    reports, truth = replicate(kind, k, skew, correlation,
                               replications, rounds)
    estimates = np.array([r.estimate for r in reports])
    mean = float(estimates.mean())
    if kind == "avg":
        # Ratio estimator: consistent, not unbiased — bound the bias.
        assert abs(mean - truth) <= AVG_RELATIVE_TOL * abs(truth), (
            f"avg replicate mean {mean:.2f} strays more than "
            f"{AVG_RELATIVE_TOL:.0%} from truth {truth:.2f}"
        )
    else:
        se = float(estimates.std(ddof=1)) / math.sqrt(len(estimates))
        assert abs(mean - truth) <= Z_BOUND * se, (
            f"{kind} replicate mean {mean:.2f} deviates "
            f"{abs(mean - truth) / se:.2f} SEs from truth {truth:.2f} "
            f"(bound {Z_BOUND})"
        )
    coverage = float(np.mean(
        [r.ci95[0] <= truth <= r.ci95[1] for r in reports]
    ))
    assert coverage >= 0.95 - COVERAGE_TOL, (
        f"{kind} 95% CI covers truth in only {coverage:.0%} of "
        f"{len(reports)} replicates (tolerated floor "
        f"{0.95 - COVERAGE_TOL:.0%})"
    )


class TestFastSubset:
    """The tier-1 battery: one grid point, every aggregate."""

    @pytest.mark.parametrize("kind", sorted(AGGREGATES))
    @pytest.mark.parametrize("k,skew,correlation", FAST_GRID)
    def test_unbiased_and_calibrated(self, kind, k, skew, correlation):
        check_battery(kind, k, skew, correlation,
                      replications=20, rounds=8)


@pytest.mark.slow
class TestFullGrid:
    """The exhaustive battery (opt-in: ``pytest --runslow``)."""

    @pytest.mark.parametrize("kind", sorted(AGGREGATES))
    @pytest.mark.parametrize("k,skew,correlation", FULL_GRID)
    def test_unbiased_and_calibrated(self, kind, k, skew, correlation):
        check_battery(kind, k, skew, correlation,
                      replications=40, rounds=12)


class TestReplicationProtocol:
    """The battery's own plumbing is deterministic and honest."""

    def test_replicates_are_deterministic(self):
        first, truth_a = replicate("size", 16, 0.3, 0.0, 3, 5)
        second, truth_b = replicate("size", 16, 0.3, 0.0, 3, 5)
        assert truth_a == truth_b
        assert [r.to_json() for r in first] == [r.to_json() for r in second]

    def test_replicates_vary_with_seed(self):
        reports, _ = replicate("size", 16, 0.3, 0.0, 4, 5)
        assert len({r.estimate for r in reports}) > 1

    def test_grid_tables_hold_the_paper_model(self):
        for skew, correlation in {(s, c) for _, s, c in FULL_GRID}:
            table = grid_table(skew, correlation)
            assert table.num_tuples == M  # dedup converged, nothing lost
