"""Unit tests for the Boolean dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    bool_iid,
    bool_mixed,
    bool_mixed_probabilities,
    boolean_table,
)


class TestBooleanTable:
    def test_shape(self):
        t = boolean_table(100, [0.5] * 12, seed=1)
        assert t.num_tuples == 100
        assert t.num_attributes == 12

    def test_no_duplicates(self):
        t = boolean_table(500, [0.5] * 10, seed=2)
        assert np.unique(t.data, axis=0).shape[0] == 500

    def test_deterministic_with_seed(self):
        a = boolean_table(50, [0.3] * 8, seed=9)
        b = boolean_table(50, [0.3] * 8, seed=9)
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(a.measure("VALUE"), b.measure("VALUE"))

    def test_different_seeds_differ(self):
        a = boolean_table(50, [0.3] * 8, seed=9)
        b = boolean_table(50, [0.3] * 8, seed=10)
        assert not np.array_equal(a.data, b.data)

    def test_marginals_roughly_match(self):
        probs = [0.1, 0.5, 0.9]
        t = boolean_table(5000, probs + [0.5] * 12, seed=3)
        observed = t.data[:, :3].mean(axis=0)
        assert np.allclose(observed, probs, atol=0.05)

    def test_value_measure_positive(self):
        t = boolean_table(100, [0.5] * 10, seed=4)
        assert (t.measure("VALUE") > 0).all()

    def test_rejects_impossible_size(self):
        with pytest.raises(ValueError):
            boolean_table(100, [0.5] * 3, seed=1)  # 2^3 = 8 < 100

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            boolean_table(4, [0.5, 1.5], seed=1)
        with pytest.raises(ValueError):
            boolean_table(4, [], seed=1)

    def test_degenerate_probabilities_do_not_count_as_entropy(self):
        # p=0/p=1 columns are constant; capacity comes from the rest.
        t = boolean_table(4, [0.0, 1.0, 0.5, 0.5], seed=1)
        assert t.num_tuples == 4
        assert (t.data[:, 0] == 0).all()
        assert (t.data[:, 1] == 1).all()
        with pytest.raises(ValueError):
            boolean_table(5, [0.0, 1.0, 0.5, 0.5], seed=1)


class TestPaperDatasets:
    def test_bool_iid_defaults_scaled(self):
        t = bool_iid(m=1000, n=20, seed=5)
        assert t.num_tuples == 1000
        assert t.num_attributes == 20
        assert abs(t.data.mean() - 0.5) < 0.03

    def test_bool_mixed_probability_vector(self):
        probs = bool_mixed_probabilities()
        assert len(probs) == 40
        assert (probs[:5] == 0.5).all()
        assert probs[5] == pytest.approx(1 / 70)
        assert probs[-1] == pytest.approx(35 / 70)

    def test_bool_mixed_is_skewed(self):
        t = bool_mixed(m=2000, n=40, seed=6)
        col_means = t.data.mean(axis=0)
        # First five columns dense, early skewed columns sparse.
        assert col_means[:5].mean() > 0.4
        assert col_means[5] < 0.1

    def test_bool_mixed_requires_room_for_uniform_attrs(self):
        with pytest.raises(ValueError):
            bool_mixed_probabilities(n=5, n_uniform=5)
