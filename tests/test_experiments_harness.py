"""Unit tests for the experiment harness."""

import math

import pytest

from repro.datasets import boolean_table
from repro.experiments import (
    SCALES,
    agg_factory,
    capture_recapture_factory,
    collect_trajectories,
    hd_size_factory,
    metrics_at_costs,
    resolve_scale,
)
from repro.experiments.config import default_scale_name
from repro.utils.stats import StreamingMeanSeries


@pytest.fixture(scope="module")
def table():
    return boolean_table(400, [0.5] * 10, seed=31)


class TestScales:
    def test_resolve_by_name(self):
        assert resolve_scale("tiny").name == "tiny"

    def test_resolve_passthrough(self):
        s = SCALES["small"]
        assert resolve_scale(s) is s

    def test_resolve_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert resolve_scale(None).name == "small"

    def test_repro_full_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert default_scale_name() == "paper"

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            resolve_scale("huge")

    def test_all_scales_well_formed(self):
        for scale in SCALES.values():
            assert scale.m > 0 and scale.k > 0 and scale.replications > 0
            assert len(scale.cost_grid) >= 3
            assert list(scale.cost_grid) == sorted(scale.cost_grid)


class TestFactories:
    def test_hd_factory_trajectories_independent(self, table):
        factory = hd_size_factory(table, k=10, budget=120, r=2, dub=8)
        t1 = factory(1)
        t2 = factory(2)
        assert len(t1) > 0 and len(t2) > 0
        assert t1.values != t2.values or t1.xs != t2.xs

    def test_agg_factory(self, table):
        factory = agg_factory(
            table, k=10, budget=120, aggregate="sum", measure="VALUE",
            r=2, dub=8,
        )
        trajectory = factory(3)
        assert len(trajectory) > 0
        assert all(v > 0 for v in trajectory.values)

    def test_cr_factory_respects_budget(self, table):
        factory = capture_recapture_factory(table, k=10, budget=100)
        trajectory = factory(4)
        assert not trajectory.xs or max(trajectory.xs) <= 100

    def test_collect_trajectories_count(self, table):
        factory = hd_size_factory(table, k=10, budget=80, r=2, dub=8)
        trajectories = collect_trajectories(factory, 3, base_seed=5)
        assert len(trajectories) == 3

    def test_collect_validation(self, table):
        factory = hd_size_factory(table, k=10, budget=80)
        with pytest.raises(ValueError):
            collect_trajectories(factory, 0, base_seed=1)

    def test_collect_parallel_matches_sequential(self, table):
        factory = hd_size_factory(table, k=10, budget=80, r=2, dub=8)
        sequential = collect_trajectories(factory, 4, base_seed=5)
        parallel = collect_trajectories(factory, 4, base_seed=5, workers=3)
        for a, b in zip(sequential, parallel):
            assert a.xs == b.xs
            assert a.values == b.values

    def test_factory_backend_option(self, table):
        scan = hd_size_factory(table, k=10, budget=80, r=2, dub=8)
        bitmap = hd_size_factory(
            table, k=10, budget=80, r=2, dub=8, backend="bitmap"
        )
        a, b = scan(9), bitmap(9)
        assert a.xs == b.xs
        assert a.values == b.values


class TestMetrics:
    def _trajectories(self):
        t1 = StreamingMeanSeries()
        t1.append(10, 90.0)
        t1.append(20, 100.0)
        t2 = StreamingMeanSeries()
        t2.append(15, 110.0)
        return [t1, t2]

    def test_metrics_basic(self):
        metrics = metrics_at_costs(self._trajectories(), truth=100.0, costs=[20])
        point = metrics[0]
        assert point.replications == 2
        assert point.mean_estimate == pytest.approx(105.0)
        assert point.mse == pytest.approx((0 + 100) / 2)
        assert point.mean_relative_error == pytest.approx(0.05)

    def test_metrics_before_any_estimate(self):
        metrics = metrics_at_costs(self._trajectories(), truth=100.0, costs=[5])
        assert metrics[0].replications == 0
        assert math.isnan(metrics[0].mse)

    def test_metrics_partial_coverage(self):
        metrics = metrics_at_costs(self._trajectories(), truth=100.0, costs=[12])
        assert metrics[0].replications == 1
        assert metrics[0].mean_estimate == pytest.approx(90.0)

    def test_infinite_estimates_dropped(self):
        t = StreamingMeanSeries()
        t.append(10, float("inf"))
        metrics = metrics_at_costs([t], truth=100.0, costs=[10])
        assert metrics[0].replications == 0

    def test_std_zero_for_single_observation(self):
        t = StreamingMeanSeries()
        t.append(10, 42.0)
        metrics = metrics_at_costs([t], truth=100.0, costs=[10])
        assert metrics[0].std_estimate == 0.0


class TestCollectSpecRuns:
    def _spec(self):
        from repro.api import DatasetSpec, EstimationSpec, RegimeSpec, TargetSpec

        return EstimationSpec(
            target=TargetSpec(
                dataset=DatasetSpec(name="iid", m=300, seed=5), k=20
            ),
            regime=RegimeSpec(rounds=3, seed=0),
        )

    def test_replication_seeds_vary_only_the_session(self):
        from repro.experiments.harness import collect_spec_runs

        reports = collect_spec_runs(self._spec(), replications=3, base_seed=11)
        assert len(reports) == 3
        assert all(r.rounds == 3 for r in reports)
        # Distinct session seeds -> (almost surely) distinct estimates.
        assert len({r.estimate for r in reports}) > 1
        # The embedded spec echoes the derived seed per replication.
        assert [r.spec.regime.seed for r in reports] == [11, 11 + 7919, 11 + 2 * 7919]

    def test_worker_pool_matches_sequential(self):
        from repro.experiments.harness import collect_spec_runs

        sequential = collect_spec_runs(self._spec(), replications=3, base_seed=11)
        pooled = collect_spec_runs(
            self._spec(), replications=3, base_seed=11, workers=3
        )
        assert [r.to_json() for r in sequential] == [r.to_json() for r in pooled]

    def test_rejects_zero_replications(self):
        import pytest

        from repro.experiments.harness import collect_spec_runs

        with pytest.raises(ValueError):
            collect_spec_runs(self._spec(), replications=0, base_seed=1)
