"""Unit tests for confidence-interval helpers."""

import math

import numpy as np
import pytest

from repro.analysis import (
    chebyshev_confidence_interval,
    normal_confidence_interval,
    rounds_for_relative_error,
)


class TestNormalCI:
    def test_symmetric_around_mean(self):
        low, high = normal_confidence_interval([8.0, 10.0, 12.0])
        assert (low + high) / 2 == pytest.approx(10.0)

    def test_wider_with_more_confidence(self):
        data = list(np.random.default_rng(1).normal(0, 1, 50))
        low95, high95 = normal_confidence_interval(data, z=1.96)
        low99, high99 = normal_confidence_interval(data, z=2.576)
        assert (high99 - low99) > (high95 - low95)

    def test_coverage_monte_carlo(self):
        rng = np.random.default_rng(2)
        covered = 0
        trials = 300
        for _ in range(trials):
            data = rng.normal(5.0, 2.0, 40)
            low, high = normal_confidence_interval(list(data))
            covered += low <= 5.0 <= high
        assert covered / trials > 0.9


class TestChebyshevCI:
    def test_contains_mean(self):
        low, high = chebyshev_confidence_interval(100.0, 400.0, rounds=4)
        assert low < 100.0 < high

    def test_shrinks_with_rounds(self):
        w1 = chebyshev_confidence_interval(0.0, 100.0, rounds=1)
        w2 = chebyshev_confidence_interval(0.0, 100.0, rounds=100)
        assert (w2[1] - w2[0]) < (w1[1] - w1[0])

    def test_wider_than_normal_for_same_data(self):
        # Chebyshev is distribution-free, hence conservative.
        variance = 4.0
        rounds = 25
        cheb = chebyshev_confidence_interval(0.0, variance, rounds)
        normal_half = 1.96 * math.sqrt(variance / rounds)
        assert (cheb[1] - cheb[0]) / 2 > normal_half

    def test_validation(self):
        with pytest.raises(ValueError):
            chebyshev_confidence_interval(0.0, 1.0, rounds=0)
        with pytest.raises(ValueError):
            chebyshev_confidence_interval(0.0, -1.0, rounds=5)
        with pytest.raises(ValueError):
            chebyshev_confidence_interval(0.0, 1.0, rounds=5, confidence=1.5)


class TestRoundsForRelativeError:
    def test_known_value(self):
        # z^2 s^2 / (target*truth)^2 = 1.96^2*10000/(0.01*1000)^2 = 384.16
        rounds = rounds_for_relative_error(10_000.0, 0.01, 1_000.0)
        assert rounds == 385

    def test_at_least_one(self):
        assert rounds_for_relative_error(1e-9, 0.5, 100.0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            rounds_for_relative_error(1.0, 0.0, 100.0)
        with pytest.raises(ValueError):
            rounds_for_relative_error(-1.0, 0.1, 100.0)
        with pytest.raises(ValueError):
            rounds_for_relative_error(1.0, 0.1, 100.0, confidence=0.5)
