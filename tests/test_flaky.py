"""Unit tests for failure injection and client retries."""

import pytest

from repro.core import HDUnbiasedSize
from repro.datasets import boolean_table
from repro.hidden_db import (
    ConjunctiveQuery,
    FlakyInterface,
    HiddenDBClient,
    TopKInterface,
    TransientServerError,
)


@pytest.fixture(scope="module")
def table():
    return boolean_table(400, [0.5] * 10, seed=81)


def flaky_client(table, rate, retries, seed=0, charge_failures=False):
    flaky = FlakyInterface(
        TopKInterface(table, 10), failure_rate=rate,
        charge_failures=charge_failures, seed=seed,
    )
    return HiddenDBClient(flaky, retries=retries), flaky


class TestFlakyInterface:
    def test_failures_are_injected(self, table):
        client, flaky = flaky_client(table, rate=0.5, retries=0, seed=1)
        failures = 0
        for _ in range(50):
            client.clear_cache()  # cache hits never reach the server
            try:
                client.query(ConjunctiveQuery())
            except TransientServerError:
                failures += 1
        assert failures > 0
        assert flaky.failures_injected == failures

    def test_zero_rate_never_fails(self, table):
        client, _ = flaky_client(table, rate=0.0, retries=0, seed=2)
        for _ in range(20):
            client.query(ConjunctiveQuery())

    def test_failures_not_charged_by_default(self, table):
        client, flaky = flaky_client(table, rate=0.9, retries=0, seed=3)
        charged_before = flaky.counter.issued
        with pytest.raises(TransientServerError):
            for _ in range(100):
                client.clear_cache()
                client.query(ConjunctiveQuery())
        assert flaky.counter.issued >= charged_before

    def test_charge_failures_mode(self, table):
        client, flaky = flaky_client(
            table, rate=0.99, retries=0, seed=4, charge_failures=True
        )
        with pytest.raises(TransientServerError):
            client.query(ConjunctiveQuery())
        assert flaky.counter.issued == 1

    def test_rate_validation(self, table):
        with pytest.raises(ValueError):
            FlakyInterface(TopKInterface(table, 10), failure_rate=1.0)


class TestClientRetries:
    def test_retries_mask_transient_failures(self, table):
        client, flaky = flaky_client(table, rate=0.4, retries=10, seed=5)
        for _ in range(30):
            result = client.query(ConjunctiveQuery())
            client.clear_cache()
        assert result is not None
        assert client.retries_performed > 0

    def test_retry_budget_exhaustion_propagates(self, table):
        client, _ = flaky_client(table, rate=0.95, retries=1, seed=6)
        with pytest.raises(TransientServerError):
            for _ in range(200):
                client.clear_cache()
                client.query(ConjunctiveQuery())

    def test_retries_validation(self, table):
        with pytest.raises(ValueError):
            HiddenDBClient(TopKInterface(table, 10), retries=-1)

    def test_estimation_survives_flaky_server(self, table):
        # The headline: estimates through a 20%-flaky server with retries
        # are the *same random variable* as through a reliable one; only
        # latency/attempts change.  (Same seed != same walk here because
        # the walk RNG is separate from the failure RNG, so we check
        # statistical sanity instead.)
        client, flaky = flaky_client(table, rate=0.2, retries=25, seed=7)
        estimator = HDUnbiasedSize(client, r=3, dub=16, seed=8)
        result = estimator.run(rounds=25)
        assert result.mean == pytest.approx(400, rel=0.35)
        assert flaky.failures_injected > 0

    def test_estimates_identical_to_reliable_server_with_same_walk_seed(
        self, table
    ):
        # The failure stream is independent of the walk stream, so with
        # retries high enough to absorb all failures the walk sequence —
        # and hence every estimate — is bit-identical to the reliable run.
        reliable = HDUnbiasedSize(
            HiddenDBClient(TopKInterface(table, 10)), r=3, dub=16, seed=9
        ).run(rounds=10)
        client, _ = flaky_client(table, rate=0.3, retries=100, seed=10)
        flaky_result = HDUnbiasedSize(client, r=3, dub=16, seed=9).run(rounds=10)
        assert flaky_result.estimates == reliable.estimates
