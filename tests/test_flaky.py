"""Unit tests for failure injection and client retries."""

import pytest

from repro.core import HDUnbiasedSize
from repro.datasets import boolean_table
from repro.hidden_db import (
    ConjunctiveQuery,
    FlakyInterface,
    HiddenDBClient,
    OnlineFormSimulator,
    TopKInterface,
    TransientServerError,
)


@pytest.fixture(scope="module")
def table():
    return boolean_table(400, [0.5] * 10, seed=81)


def flaky_client(table, rate, retries, seed=0, charge_failures=False):
    flaky = FlakyInterface(
        TopKInterface(table, 10), failure_rate=rate,
        charge_failures=charge_failures, seed=seed,
    )
    return HiddenDBClient(flaky, retries=retries), flaky


class TestFlakyInterface:
    def test_failures_are_injected(self, table):
        client, flaky = flaky_client(table, rate=0.5, retries=0, seed=1)
        failures = 0
        for _ in range(50):
            client.clear_cache()  # cache hits never reach the server
            try:
                client.query(ConjunctiveQuery())
            except TransientServerError:
                failures += 1
        assert failures > 0
        assert flaky.failures_injected == failures

    def test_zero_rate_never_fails(self, table):
        client, _ = flaky_client(table, rate=0.0, retries=0, seed=2)
        for _ in range(20):
            client.query(ConjunctiveQuery())

    def test_failures_not_charged_by_default(self, table):
        client, flaky = flaky_client(table, rate=0.9, retries=0, seed=3)
        charged_before = flaky.counter.issued
        with pytest.raises(TransientServerError):
            for _ in range(100):
                client.clear_cache()
                client.query(ConjunctiveQuery())
        assert flaky.counter.issued >= charged_before

    def test_charge_failures_mode(self, table):
        client, flaky = flaky_client(
            table, rate=0.99, retries=0, seed=4, charge_failures=True
        )
        with pytest.raises(TransientServerError):
            client.query(ConjunctiveQuery())
        assert flaky.counter.issued == 1

    def test_rate_validation(self, table):
        with pytest.raises(ValueError):
            FlakyInterface(TopKInterface(table, 10), failure_rate=1.0)


class TestPassthrough:
    """The wrapper forwards everything the wrapped form exposes."""

    def test_count_only_is_forwarded(self, table):
        flaky = FlakyInterface(TopKInterface(table, 10), failure_rate=0.0)
        page = flaky.query(ConjunctiveQuery(), count_only=True)
        assert not page.is_materialized  # count_only reached the inner form

    def test_version_metadata_is_forwarded(self, table):
        inner = TopKInterface(table, 10)
        flaky = FlakyInterface(inner, failure_rate=0.0)
        assert flaky.version == inner.version == table.version

    def test_stale_cache_eviction_works_through_the_wrapper(self):
        mutable = boolean_table(120, [0.5] * 8, seed=4)
        flaky = FlakyInterface(
            TopKInterface(mutable, 10), failure_rate=0.0
        )
        client = HiddenDBClient(flaky)
        query = ConjunctiveQuery().extended(0, 1)
        client.query(query)
        mutable.apply_updates(deletes=[0])
        client.query(query)
        assert client.cache_info()["stale_evictions"] >= 1
        assert client.cost == 2  # re-charged, never served stale

    def test_total_issued_forwarded_from_online_simulator(self, table):
        simulator = OnlineFormSimulator(
            TopKInterface(table, 10), daily_limit=100
        )
        flaky = FlakyInterface(simulator, failure_rate=0.0)
        client = HiddenDBClient(flaky, cache=False)
        client.query(ConjunctiveQuery())
        client.query(ConjunctiveQuery().extended(0, 1))
        simulator.advance_day()  # daily counter resets...
        client.query(ConjunctiveQuery().extended(1, 1))
        # ...but the client's cost keeps counting the lifetime total.
        assert flaky.total_issued == 3
        assert client.cost == 3

    def test_plain_interface_has_no_total(self, table):
        flaky = FlakyInterface(TopKInterface(table, 10), failure_rate=0.0)
        assert flaky.total_issued is None


class TestClientRetries:
    def test_retries_mask_transient_failures(self, table):
        client, flaky = flaky_client(table, rate=0.4, retries=10, seed=5)
        for _ in range(30):
            result = client.query(ConjunctiveQuery())
            client.clear_cache()
        assert result is not None
        assert client.retries_performed > 0

    def test_retry_budget_exhaustion_propagates(self, table):
        client, _ = flaky_client(table, rate=0.95, retries=1, seed=6)
        with pytest.raises(TransientServerError):
            for _ in range(200):
                client.clear_cache()
                client.query(ConjunctiveQuery())

    def test_retries_validation(self, table):
        with pytest.raises(ValueError):
            HiddenDBClient(TopKInterface(table, 10), retries=-1)

    def test_estimation_survives_flaky_server(self, table):
        # The headline: estimates through a 20%-flaky server with retries
        # are the *same random variable* as through a reliable one; only
        # latency/attempts change.  (Same seed != same walk here because
        # the walk RNG is separate from the failure RNG, so we check
        # statistical sanity instead.)
        client, flaky = flaky_client(table, rate=0.2, retries=25, seed=7)
        estimator = HDUnbiasedSize(client, r=3, dub=16, seed=8)
        result = estimator.run(rounds=25)
        assert result.mean == pytest.approx(400, rel=0.35)
        assert flaky.failures_injected > 0

    def test_estimates_identical_to_reliable_server_with_same_walk_seed(
        self, table
    ):
        # The failure stream is independent of the walk stream, so with
        # retries high enough to absorb all failures the walk sequence —
        # and hence every estimate — is bit-identical to the reliable run.
        reliable = HDUnbiasedSize(
            HiddenDBClient(TopKInterface(table, 10)), r=3, dub=16, seed=9
        ).run(rounds=10)
        client, _ = flaky_client(table, rate=0.3, retries=100, seed=10)
        flaky_result = HDUnbiasedSize(client, r=3, dub=16, seed=9).run(rounds=10)
        assert flaky_result.estimates == reliable.estimates


class TestFlakyParallelSessions:
    """Regression: flaky retries × ParallelSession workers.

    A FlakyInterface can now be cloned into parallel rounds: each round
    derives its failure stream from the round seed, so the injected
    failures — and any charges they incur — are a function of the round
    alone.  Charge accounting must therefore be worker-count invariant.
    """

    def run_parallel(self, table, workers, charge_failures):
        flaky = FlakyInterface(
            TopKInterface(table, 10), failure_rate=0.25,
            charge_failures=charge_failures, seed=3,
        )
        client = HiddenDBClient(flaky, retries=50)
        estimator = HDUnbiasedSize(client, r=2, dub=16, seed=21)
        session = estimator.parallel_session(workers, seed=77)
        result = session.run(rounds=12)
        return result, session.client_stats

    @pytest.mark.parametrize("charge_failures", [False, True])
    def test_worker_count_invariance_with_retries(self, table, charge_failures):
        baseline, base_stats = self.run_parallel(table, 1, charge_failures)
        for workers in (2, 4):
            result, stats = self.run_parallel(table, workers, charge_failures)
            assert result.estimates == baseline.estimates
            assert result.total_cost == baseline.total_cost
            assert stats["cost"] == base_stats["cost"]
            assert stats["retries_performed"] == base_stats["retries_performed"]
        # The failure injection actually exercised the retry path.
        assert base_stats["retries_performed"] > 0

    def test_charged_failures_increase_cost(self, table):
        uncharged, _ = self.run_parallel(table, 2, charge_failures=False)
        charged, _ = self.run_parallel(table, 2, charge_failures=True)
        assert charged.total_cost > uncharged.total_cost
        # The walks themselves are unaffected by charging policy.
        assert charged.estimates == uncharged.estimates

    def test_estimator_run_workers_kwarg(self, table):
        # run(workers=N) over a flaky client no longer raises; any two
        # pool sizes agree bit-for-bit.
        results = []
        for workers in (2, 3):
            flaky = FlakyInterface(
                TopKInterface(table, 10), failure_rate=0.2, seed=5
            )
            client = HiddenDBClient(flaky, retries=30)
            results.append(
                HDUnbiasedSize(client, r=2, dub=16, seed=13).run(
                    rounds=8, workers=workers
                )
            )
        assert results[0].estimates == results[1].estimates
        assert results[0].total_cost == results[1].total_cost
