"""Unit tests for the divide-&-conquer tree estimator."""

import numpy as np
import pytest

from repro.core.divide_conquer import estimate_tree
from repro.core.drilldown import Walker
from repro.core.partition import segment_attributes
from repro.core.weights import UniformWeights, WeightStore
from repro.datasets import running_example, worst_case
from repro.hidden_db import ConjunctiveQuery, HiddenDBClient, TopKInterface


def count_mass(result):
    return np.array([float(result.num_returned)])


def make_walker(table, k, seed, weights=None):
    client = HiddenDBClient(TopKInterface(table, k))
    return Walker(client, weights or UniformWeights(), np.random.default_rng(seed))


class TestEstimateTree:
    def test_single_segment_reduces_to_plain_walks(self):
        table = running_example()
        walker = make_walker(table, k=1, seed=1)
        est = estimate_tree(
            walker, ConjunctiveQuery(), [[0, 1, 2, 3, 4]], r=1, mass_fn=count_mass,
            dims=1,
        )
        assert est.walks == 1
        assert est.subtrees == 1
        assert est.deepest_layer == 0
        assert est.values[0] > 0

    def test_recursion_visits_deeper_layers(self):
        table = running_example()
        walker = make_walker(table, k=1, seed=2)
        segments = segment_attributes([0, 1, 2, 3, 4], table.schema, dub=4)
        est = estimate_tree(
            walker, ConjunctiveQuery(), segments, r=2, mass_fn=count_mass, dims=1
        )
        assert est.deepest_layer >= 1
        assert est.walks >= 2

    def test_r_validation(self):
        table = running_example()
        walker = make_walker(table, k=1, seed=1)
        with pytest.raises(ValueError):
            estimate_tree(
                walker, ConjunctiveQuery(), [[0]], r=0, mass_fn=count_mass, dims=1
            )

    def test_duplicate_table_raises(self):
        # Two identical tuples and k=1: the walk bottoms out overflowing
        # with no segments left.
        from repro.hidden_db import Attribute, HiddenTable, Schema

        schema = Schema([Attribute("A", 2)])
        table = HiddenTable.from_rows(schema, [[1], [1]])
        walker = make_walker(table, k=1, seed=0)
        with pytest.raises(RuntimeError):
            estimate_tree(
                walker, ConjunctiveQuery(), [[0]], r=1, mass_fn=count_mass, dims=1
            )

    def test_vector_masses(self):
        # Estimate COUNT and 2*COUNT simultaneously; the second component
        # must be exactly twice the first for every pass.
        table = running_example()
        walker = make_walker(table, k=1, seed=5)

        def mass2(result):
            c = float(result.num_returned)
            return np.array([c, 2 * c])

        est = estimate_tree(
            walker, ConjunctiveQuery(), [[0, 1, 2, 3, 4]], r=3, mass_fn=mass2, dims=2
        )
        assert est.values[1] == pytest.approx(2 * est.values[0])


class TestUnbiasedness:
    """Monte-Carlo checks that E[estimate] = truth (3-sigma tolerance)."""

    def _mc_mean(self, table, k, segments_dub, r, weights_cls, reps, seed0):
        values = []
        for i in range(reps):
            weights = weights_cls() if weights_cls else UniformWeights()
            client = HiddenDBClient(TopKInterface(table, k))
            walker = Walker(client, weights, np.random.default_rng(seed0 + i))
            order = list(range(table.num_attributes))
            segments = segment_attributes(order, table.schema, segments_dub)
            root_count = table.count(ConjunctiveQuery())
            est = estimate_tree(
                walker, ConjunctiveQuery(), segments, r=r, mass_fn=count_mass,
                dims=1,
            )
            values.append(est.values[0])
        arr = np.asarray(values)
        return arr.mean(), arr.std(ddof=1) / np.sqrt(len(arr))

    def test_unbiased_plain(self, small_bool_table):
        mean, se = self._mc_mean(
            small_bool_table, 5, None, 1, None, reps=600, seed0=10_000
        )
        assert abs(mean - 300) <= 3 * se

    def test_unbiased_with_dnc(self, small_bool_table):
        mean, se = self._mc_mean(
            small_bool_table, 5, 4, 2, None, reps=500, seed0=20_000
        )
        assert abs(mean - 300) <= 3 * se

    def test_unbiased_with_dnc_and_wa(self, small_bool_table):
        mean, se = self._mc_mean(
            small_bool_table, 5, 4, 3, WeightStore, reps=400, seed0=30_000
        )
        assert abs(mean - 300) <= 3 * se

    def test_unbiased_on_worst_case(self):
        table = worst_case(8)
        mean, se = self._mc_mean(table, 1, 4, 2, None, reps=800, seed0=40_000)
        assert abs(mean - 9) <= 3 * se

    def test_dnc_reduces_variance_on_worst_case(self):
        table = worst_case(10)
        plain = []
        dnc = []
        for i in range(300):
            for collector, dub, r in ((plain, None, 1), (dnc, 4, 3)):
                client = HiddenDBClient(TopKInterface(table, 1))
                walker = Walker(client, UniformWeights(), np.random.default_rng(900 + i))
                segments = segment_attributes(
                    list(range(10)), table.schema, dub
                )
                est = estimate_tree(
                    walker, ConjunctiveQuery(), segments, r=r,
                    mass_fn=count_mass, dims=1,
                )
                collector.append(est.values[0])
        # The paper's headline: D&C slashes the worst-case variance.
        assert np.var(dnc) < np.var(plain)
