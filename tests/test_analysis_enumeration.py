"""Unit tests for the exact tree analysis (enumeration, Theorem 2)."""


import pytest
import numpy as np

from repro.analysis import (
    iter_top_valid,
    theorem2_variance,
    uniform_walk_probabilities,
)
from repro.core import BoolUnbiasedSize
from repro.datasets import boolean_table, running_example, worst_case
from repro.hidden_db import ConjunctiveQuery, HiddenDBClient, TopKInterface


ORDER5 = [0, 1, 2, 3, 4]


class TestIterTopValid:
    def test_running_example_has_six_top_valid_nodes_at_k1(self):
        # Figure 1: with k = 1 every tuple has its own top-valid node.
        table = running_example()
        nodes = list(iter_top_valid(table, 1, ORDER5))
        assert len(nodes) == 6
        assert sum(n.count for n in nodes) == 6

    def test_counts_partition_the_table(self):
        table = boolean_table(200, [0.5] * 10, seed=1)
        for k in (1, 3, 10):
            nodes = list(iter_top_valid(table, k, list(range(10))))
            assert sum(n.count for n in nodes) == 200
            assert all(1 <= n.count <= k for n in nodes)

    def test_larger_k_gives_fewer_shallower_nodes(self):
        table = boolean_table(200, [0.5] * 10, seed=2)
        small = list(iter_top_valid(table, 2, list(range(10))))
        large = list(iter_top_valid(table, 50, list(range(10))))
        assert len(large) < len(small)
        assert max(n.depth for n in large) <= max(n.depth for n in small)

    def test_valid_root_is_single_node(self):
        table = boolean_table(5, [0.5] * 6, seed=3)
        nodes = list(iter_top_valid(table, 10, list(range(6))))
        assert len(nodes) == 1
        assert nodes[0].depth == 0
        assert nodes[0].count == 5

    def test_empty_root(self):
        table = running_example()
        root = ConjunctiveQuery().extended(4, 1)  # A5='2' matches nothing
        assert list(iter_top_valid(table, 1, ORDER5, root=root)) == []

    def test_subtree_enumeration(self):
        table = running_example()
        root = ConjunctiveQuery().extended(0, 0)  # t1..t4
        nodes = list(iter_top_valid(table, 1, ORDER5, root=root))
        assert sum(n.count for n in nodes) == 4


class TestUniformWalkProbabilities:
    def test_probabilities_sum_to_one(self):
        table = boolean_table(150, [0.5, 0.5, 0.2, 0.3, 0.4, 0.2, 0.3, 0.25], seed=4)
        probs = uniform_walk_probabilities(table, 3, list(range(8)))
        total = sum(p for p, _ in probs.values())
        assert total == pytest.approx(1.0)

    def test_counts_match_enumeration(self):
        table = running_example()
        probs = uniform_walk_probabilities(table, 1, ORDER5)
        nodes = {n.query.key: n.count for n in iter_top_valid(table, 1, ORDER5)}
        assert set(probs) == set(nodes)
        for key, (_, count) in probs.items():
            assert count == nodes[key]

    def test_walker_reports_matching_probability(self):
        # The deep cross-check: the walker's self-reported p(q) equals the
        # exact reaching probability for every node reached.
        from repro.core.drilldown import Walker
        from repro.core.weights import UniformWeights

        table = boolean_table(
            120, [0.5, 0.5, 0.15, 0.3, 0.4, 0.1, 0.25, 0.5, 0.35, 0.45], seed=5
        )
        order = list(range(10))
        exact = uniform_walk_probabilities(table, 3, order)
        client = HiddenDBClient(TopKInterface(table, 3))
        walker = Walker(client, UniformWeights(), np.random.default_rng(6))
        for _ in range(400):
            out = walker.drill_down(ConjunctiveQuery(), order)
            true_prob, true_count = exact[out.query.key]
            assert out.probability == pytest.approx(true_prob)
            assert out.result.num_returned == true_count

    def test_categorical_windows(self):
        table = running_example()
        # Order A5 first: its branch structure at the root is val0 (5
        # tuples) and val2 (1 tuple), others empty.
        probs = uniform_walk_probabilities(table, 1, [4, 0, 1, 2, 3])
        total = sum(p for p, _ in probs.values())
        assert total == pytest.approx(1.0)


class TestTheorem2:
    def test_exact_variance_on_running_example(self):
        # Verified analytically for Figure 1 (k=1): sum(|q|^2/p) - 36 = 16.
        table = running_example()
        assert theorem2_variance(table, 1, ORDER5) == pytest.approx(16.0)

    def test_monte_carlo_matches_exact_variance(self):
        table = boolean_table(150, [0.5, 0.5, 0.2, 0.3, 0.4, 0.2, 0.3, 0.25], seed=7)
        order = list(range(8))
        exact_var = theorem2_variance(table, 3, order)
        values = []
        for i in range(1200):
            client = HiddenDBClient(TopKInterface(table, 3))
            est = BoolUnbiasedSize(client, attribute_order=order, seed=80_000 + i)
            values.append(est.run_once().value)
        sample_var = float(np.var(values, ddof=1))
        assert sample_var == pytest.approx(exact_var, rel=0.25)

    def test_worst_case_variance_is_exponential(self):
        # Figure 4 scenario: variance ~ 2^(n+1) - m^2 at k=1.
        table = worst_case(10)
        var = theorem2_variance(table, 1, list(range(10)))
        assert var > 2**11 - 11**2 - 1

    def test_zero_variance_when_root_valid(self):
        table = boolean_table(5, [0.5] * 6, seed=8)
        assert theorem2_variance(table, 10, list(range(6))) == 0.0

    def test_empty_table_zero_variance(self):
        from repro.hidden_db import Attribute, HiddenTable, Schema

        schema = Schema([Attribute("A", 2)])
        table = HiddenTable.from_rows(schema, [])
        assert theorem2_variance(table, 1, [0]) == 0.0
