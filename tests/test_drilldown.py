"""Unit tests for the backtracking drill-down walker."""

import numpy as np
import pytest

from repro.core.drilldown import Walker, WalkKind
from repro.core.weights import UniformWeights, WeightStore
from repro.datasets import running_example
from repro.hidden_db import (
    Attribute,
    ConjunctiveQuery,
    HiddenDBClient,
    HiddenTable,
    Schema,
    TopKInterface,
)


def make_walker(table, k, seed=0, weights=None):
    client = HiddenDBClient(TopKInterface(table, k))
    return Walker(client, weights or UniformWeights(), np.random.default_rng(seed))


class TestTermination:
    def test_walk_ends_top_valid_on_full_order(self):
        walker = make_walker(running_example(), k=1)
        out = walker.drill_down(ConjunctiveQuery(), [0, 1, 2, 3, 4])
        assert out.kind is WalkKind.TOP_VALID
        assert out.result is not None and out.result.valid
        assert 0 < out.probability <= 1.0

    def test_bottom_overflow_when_segment_too_short(self):
        walker = make_walker(running_example(), k=1)
        out = walker.drill_down(ConjunctiveQuery(), [0])
        # After fixing only A1 both branches still hold >1 tuples.
        assert out.kind is WalkKind.BOTTOM_OVERFLOW
        assert out.depth == 1

    def test_steps_record_the_path(self):
        walker = make_walker(running_example(), k=1, seed=3)
        out = walker.drill_down(ConjunctiveQuery(), [0, 1, 2, 3, 4])
        assert out.depth == len(out.steps)
        product = 1.0
        for step in out.steps:
            product *= step.probability
        assert product == pytest.approx(out.probability)

    def test_requires_attributes(self):
        walker = make_walker(running_example(), k=1)
        with pytest.raises(ValueError):
            walker.drill_down(ConjunctiveQuery(), [])


class TestBooleanShortcuts:
    def test_backtrack_sibling_not_issued(self):
        # Table where branch A0=0 underflows and A0=1 overflows: picking
        # A0=0 must backtrack to A0=1 *without* issuing it.
        schema = Schema([Attribute("A", 2), Attribute("B", 2)])
        table = HiddenTable.from_rows(schema, [[1, 0], [1, 1]])
        # Find a seed whose *initial pick* is the empty branch 0 (prob 1.0
        # at the first level also arises from Scenario II without
        # backtracking, so the pick itself must be replayed).
        for seed in range(50):
            first_pick = int(
                np.random.default_rng(seed).choice(2, p=[0.5, 0.5])
            )
            if first_pick != 0:
                continue
            client = HiddenDBClient(TopKInterface(table, k=1))
            walker = Walker(client, UniformWeights(), np.random.default_rng(seed))
            out = walker.drill_down(ConjunctiveQuery(), [0, 1])
            assert out.steps[0].probability == 1.0
            # Backtracking happened: the sibling A0=1 was never issued.
            assert not client.is_cached(ConjunctiveQuery().extended(0, 1))
            assert client.is_cached(ConjunctiveQuery().extended(0, 0))
            break
        else:
            pytest.fail("no seed picked the empty branch first")

    def test_valid_landing_skips_sibling_probe(self):
        # Root has 2 tuples, k=1: both children of A0 are valid with one
        # tuple each; landing on either must not probe the sibling.
        schema = Schema([Attribute("A", 2)])
        table = HiddenTable.from_rows(schema, [[0], [1]])
        client = HiddenDBClient(TopKInterface(table, k=1))
        walker = Walker(client, UniformWeights(), np.random.default_rng(1))
        out = walker.drill_down(ConjunctiveQuery(), [0])
        assert out.kind is WalkKind.TOP_VALID
        assert out.probability == pytest.approx(0.5)
        # Exactly one query charged: the landed branch.
        assert client.cost == 1

    def test_scenario_ii_probability_one(self):
        # A0=0 empty, A0=1 overflowing: reaching the A0=1 branch has
        # probability 1 regardless of the initial pick.
        schema = Schema([Attribute("A", 2), Attribute("B", 2)])
        table = HiddenTable.from_rows(schema, [[1, 0], [1, 1]])
        for seed in range(10):
            walker = make_walker(table, k=1, seed=seed)
            out = walker.drill_down(ConjunctiveQuery(), [0, 1])
            assert out.steps[0].probability == pytest.approx(1.0)

    def test_overflow_landing_probes_sibling(self):
        # Both branches of A0 overflow: landing keeps probability 1/2 and
        # the sibling must have been issued to learn that (Scenario I).
        schema = Schema([Attribute("A", 2), Attribute("B", 2), Attribute("C", 2)])
        rows = [[a, b, c] for a in range(2) for b in range(2) for c in range(2)]
        table = HiddenTable.from_rows(schema, rows)
        client = HiddenDBClient(TopKInterface(table, k=1))
        walker = Walker(client, UniformWeights(), np.random.default_rng(2))
        out = walker.drill_down(ConjunctiveQuery(), [0, 1, 2])
        assert out.steps[0].probability == pytest.approx(0.5)
        assert client.is_cached(ConjunctiveQuery().extended(0, 0))
        assert client.is_cached(ConjunctiveQuery().extended(0, 1))


class TestCategoricalSmartBacktracking:
    def figure3_table(self):
        """One categorical attribute with non-empty branches {0, 2} — the
        shape of the paper's Figure 3 (w=5, q1 and q3 non-empty)."""
        schema = Schema([Attribute("A5", 5), Attribute("B", 2)])
        rows = [[0, 0], [0, 1], [2, 0], [2, 1]]
        return HiddenTable.from_rows(schema, rows)

    def test_landing_probabilities_match_figure_3(self):
        # w_U(q1)=2 (branches 3,4 empty), w_U(q3)=1 (branch 1 empty):
        # p(land 0) = 3/5, p(land 2) = 2/5.
        table = self.figure3_table()
        landings = {0: 0, 2: 0}
        trials = 4000
        rng = np.random.default_rng(7)
        for _ in range(trials):
            client = HiddenDBClient(TopKInterface(table, k=2))
            walker = Walker(client, UniformWeights(), rng)
            out = walker.drill_down(ConjunctiveQuery(), [0])
            # Both non-empty branches hold 2 tuples = k -> valid landing.
            value = out.steps[0].value
            landings[value] += 1
            expected = 3 / 5 if value == 0 else 2 / 5
            assert out.steps[0].probability == pytest.approx(expected)
        assert landings[0] / trials == pytest.approx(3 / 5, abs=0.03)

    def test_full_circle_probability_one(self):
        # Only one non-empty branch: landing there is certain.
        schema = Schema([Attribute("A", 4), Attribute("B", 2)])
        table = HiddenTable.from_rows(schema, [[2, 0], [2, 1]])
        for seed in range(8):
            walker = make_walker(table, k=1, seed=seed)
            out = walker.drill_down(ConjunctiveQuery(), [0, 1])
            assert out.steps[0].probability == pytest.approx(1.0)
            assert out.steps[0].value == 2

    def test_inconsistent_table_detected(self):
        # A walker pointed at an *empty* root with a claim of overflow hits
        # all-underflowing branches and reports the inconsistency.  (With a
        # Boolean attribute the backtracking inference would silently trust
        # the caller, so a fanout-3 attribute is used.)
        schema = Schema([Attribute("A", 3), Attribute("B", 3)])
        table = HiddenTable.from_rows(schema, [[0, 0]])
        walker = make_walker(table, k=1)
        with pytest.raises(RuntimeError):
            # Root A=1 subtree is empty; drilling from it is a caller bug.
            walker.drill_down(ConjunctiveQuery().extended(0, 1), [1])


class TestWeightedWalks:
    def test_weighted_distribution_changes_pick_rates(self):
        schema = Schema([Attribute("A", 2), Attribute("B", 2)])
        rows = [[0, 0], [0, 1], [1, 0], [1, 1]]
        table = HiddenTable.from_rows(schema, rows)
        store = WeightStore(smoothing=0.0)
        # Claim branch 0 is 99x heavier.
        store.add_mass(frozenset(), 0, 2, 0, 99.0)
        store.add_mass(frozenset(), 0, 2, 1, 1.0)
        rng = np.random.default_rng(11)
        picks = {0: 0, 1: 0}
        for _ in range(500):
            client = HiddenDBClient(TopKInterface(table, k=2))
            walker = Walker(client, store, rng)
            out = walker.drill_down(ConjunctiveQuery(), [0])
            picks[out.steps[0].value] += 1
        assert picks[0] > 400

    def test_weighted_landing_probability_reported_correctly(self):
        schema = Schema([Attribute("A", 2), Attribute("B", 2)])
        rows = [[0, 0], [0, 1], [1, 0], [1, 1]]
        table = HiddenTable.from_rows(schema, rows)
        store = WeightStore(smoothing=0.0)
        store.add_mass(frozenset(), 0, 2, 0, 3.0)
        store.add_mass(frozenset(), 0, 2, 1, 1.0)
        client = HiddenDBClient(TopKInterface(table, k=2))
        walker = Walker(client, store, np.random.default_rng(5))
        out = walker.drill_down(ConjunctiveQuery(), [0])
        expected = 0.75 if out.steps[0].value == 0 else 0.25
        assert out.steps[0].probability == pytest.approx(expected)

    def test_walk_counter(self):
        walker = make_walker(running_example(), k=1)
        walker.drill_down(ConjunctiveQuery(), [0, 1, 2, 3, 4])
        walker.drill_down(ConjunctiveQuery(), [0, 1, 2, 3, 4])
        assert walker.walks_performed == 2
