"""Unit tests for the paper's hand-crafted example tables."""

import numpy as np
import pytest

from repro.datasets import running_example, worst_case
from repro.hidden_db import ConjunctiveQuery


class TestRunningExample:
    def test_matches_table_1(self):
        t = running_example()
        assert t.num_tuples == 6
        assert t.num_attributes == 5
        expected = np.array(
            [
                [0, 0, 0, 0, 0],
                [0, 0, 0, 1, 0],
                [0, 0, 1, 0, 0],
                [0, 1, 1, 1, 0],
                [1, 1, 1, 0, 2],
                [1, 1, 1, 1, 0],
            ]
        )
        assert np.array_equal(t.data, expected)

    def test_a5_domain_and_labels(self):
        t = running_example()
        a5 = t.schema.attribute("A5")
        assert a5.domain_size == 5
        assert a5.label_of(0) == "1"
        assert a5.label_of(2) == "3"

    def test_only_values_1_and_3_appear_in_a5(self):
        t = running_example()
        assert set(np.unique(t.data[:, 4])) == {0, 2}

    def test_figure_1_query_q2(self):
        # q2 = (A1=1 AND A2=0) underflows in Figure 1.
        t = running_example()
        q2 = ConjunctiveQuery().extended(0, 1).extended(1, 0)
        assert t.count(q2) == 0
        # Its sibling q2' = (A1=1 AND A2=1) holds t5, t6.
        q2p = ConjunctiveQuery().extended(0, 1).extended(1, 1)
        assert t.count(q2p) == 2


class TestWorstCase:
    def test_structure(self):
        t = worst_case(6)
        assert t.num_tuples == 7
        assert t.num_attributes == 6
        # t0 is all zeros; ti flips the last i attributes.
        assert (t.data[0] == 0).all()
        for i in range(1, 7):
            row = t.data[i]
            assert (row[: 6 - i] == 0).all()
            assert (row[6 - i:] == 1).all()

    def test_two_leaf_level_top_valid_nodes(self):
        # With k=1, both t0 (0...0) and t1 (0...01) sit at the deepest
        # level: their common prefix of n-1 zeros holds 2 tuples.
        t = worst_case(8)
        prefix = ConjunctiveQuery()
        for attr in range(7):
            prefix = prefix.extended(attr, 0)
        assert t.count(prefix) == 2

    def test_no_duplicates(self):
        t = worst_case(10)
        assert np.unique(t.data, axis=0).shape[0] == 11

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            worst_case(1)
