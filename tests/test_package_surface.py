"""The public API surface stays importable and coherent."""

import importlib

import pytest


def test_top_level_exports():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_version_is_semver():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


@pytest.mark.parametrize(
    "module",
    [
        "repro.hidden_db",
        "repro.core",
        "repro.baselines",
        "repro.analysis",
        "repro.datasets",
        "repro.experiments",
        "repro.experiments.figures",
        "repro.utils",
        "repro.cli",
        "repro.service",
        "repro.server",
    ],
)
def test_subpackage_all_exports_resolve(module):
    mod = importlib.import_module(module)
    assert hasattr(mod, "__all__") or module == "repro.cli"
    for name in getattr(mod, "__all__", []):
        assert getattr(mod, name) is not None, f"{module}.{name} missing"


def test_public_docstrings_exist():
    """Every public class/function re-exported at package roots carries a
    docstring (the documentation deliverable)."""
    import repro
    import repro.analysis
    import repro.baselines
    import repro.core
    import repro.datasets
    import repro.hidden_db

    for mod in (repro, repro.core, repro.hidden_db, repro.baselines,
                repro.analysis, repro.datasets):
        for name in mod.__all__:
            obj = getattr(mod, name)
            if type(obj).__module__ == "typing":
                continue  # typing aliases (e.g. MassFunction) carry no doc
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{mod.__name__}.{name} lacks a docstring"


def test_server_layer_is_reachable_from_the_root():
    """The network server ships on the stable top-level surface."""
    import repro
    import repro.server

    import repro.service

    for name in ("EstimationServer", "ServerConfig", "ServiceProtocol",
                 "Journal"):
        assert name in repro.__all__
        assert getattr(repro, name) is getattr(repro.server, name)
    assert "EstimationService" in repro.__all__
    assert repro.EstimationService is repro.service.EstimationService
    # The op table is the shared contract both transports dispatch on.
    assert set(repro.server.OPS) == {
        "submit", "result", "cancel", "cache", "metrics", "update"
    }


def test_version_reflects_the_server_milestone():
    import repro

    major, minor, _ = (int(p) for p in repro.__version__.split("."))
    assert (major, minor) >= (1, 6)


def test_estimators_share_run_protocol():
    from repro.core import BoolUnbiasedSize, HDUnbiasedAgg, HDUnbiasedSize

    for cls in (BoolUnbiasedSize, HDUnbiasedSize, HDUnbiasedAgg):
        assert hasattr(cls, "run")
        assert hasattr(cls, "run_once")
