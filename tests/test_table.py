"""Unit tests for the numpy-backed hidden table."""

import pytest

from repro.hidden_db import (
    Attribute,
    ConjunctiveQuery,
    HiddenTable,
    Schema,
    SchemaError,
)


def small_schema():
    return Schema(
        [Attribute("A", 2), Attribute("B", 3)], measure_names=("PRICE",)
    )


def small_table(**kwargs):
    rows = [
        [0, 0],
        [0, 1],
        [0, 2],
        [1, 0],
        [1, 2],
    ]
    return HiddenTable.from_rows(
        small_schema(), rows, measures={"PRICE": [10, 20, 30, 40, 50]}, **kwargs
    )


class TestConstruction:
    def test_shape_and_counts(self):
        t = small_table()
        assert t.num_tuples == 5
        assert t.num_attributes == 2

    def test_rejects_out_of_domain_values(self):
        with pytest.raises(SchemaError):
            HiddenTable.from_rows(small_schema(), [[0, 3]], measures={"PRICE": [1]})

    def test_rejects_wrong_column_count(self):
        with pytest.raises(SchemaError):
            HiddenTable.from_rows(small_schema(), [[0, 0, 0]], measures={"PRICE": [1]})

    def test_rejects_missing_measure(self):
        with pytest.raises(SchemaError):
            HiddenTable.from_rows(small_schema(), [[0, 0]])

    def test_rejects_extra_measure(self):
        schema = Schema([Attribute("A", 2)])
        with pytest.raises(SchemaError):
            HiddenTable.from_rows(schema, [[0]], measures={"X": [1.0]})

    def test_rejects_measure_length_mismatch(self):
        with pytest.raises(SchemaError):
            HiddenTable.from_rows(
                small_schema(), [[0, 0]], measures={"PRICE": [1.0, 2.0]}
            )

    def test_duplicate_detection(self):
        schema = Schema([Attribute("A", 2)])
        with pytest.raises(SchemaError):
            HiddenTable.from_rows(schema, [[0], [0]], check_duplicates=True)

    def test_empty_table(self):
        schema = Schema([Attribute("A", 2)])
        t = HiddenTable.from_rows(schema, [])
        assert t.num_tuples == 0
        assert t.count(ConjunctiveQuery()) == 0

    def test_data_view_is_read_only(self):
        t = small_table()
        with pytest.raises(ValueError):
            t.data[0, 0] = 1
        with pytest.raises(ValueError):
            t.measure("PRICE")[0] = 99.0


class TestSelection:
    def test_root_selects_everything(self):
        t = small_table()
        assert t.count(ConjunctiveQuery()) == 5

    def test_single_predicate(self):
        t = small_table()
        assert t.count(ConjunctiveQuery().extended(0, 0)) == 3
        assert t.count(ConjunctiveQuery().extended(1, 2)) == 2

    def test_conjunction(self):
        t = small_table()
        q = ConjunctiveQuery().extended(0, 1).extended(1, 2)
        assert t.count(q) == 1

    def test_empty_selection(self):
        t = small_table()
        q = ConjunctiveQuery().extended(0, 1).extended(1, 1)
        assert t.count(q) == 0

    def test_selection_ids_sorted(self):
        t = small_table()
        ids = t.selection_ids(ConjunctiveQuery().extended(0, 1))
        assert list(ids) == [3, 4]

    def test_order_of_predicates_irrelevant(self):
        t = small_table()
        a = ConjunctiveQuery().extended(0, 1).extended(1, 2)
        b = ConjunctiveQuery().extended(1, 2).extended(0, 1)
        assert list(t.selection_ids(a)) == list(t.selection_ids(b))

    def test_sum_measure(self):
        t = small_table()
        assert t.sum_measure(ConjunctiveQuery().extended(0, 0), "PRICE") == 60.0

    def test_unknown_measure(self):
        with pytest.raises(SchemaError):
            small_table().measure("NOPE")

    def test_row_access(self):
        t = small_table()
        assert t.row_values(3) == (1, 0)
        assert t.row_measures(3) == {"PRICE": 40.0}


class TestMemoisation:
    def test_cache_hit_returns_same_array(self):
        t = small_table()
        q = ConjunctiveQuery().extended(0, 0)
        first = t.selection_ids(q)
        second = t.selection_ids(q)
        assert first is second

    def test_incremental_narrowing_caches_prefixes(self):
        t = small_table()
        q = ConjunctiveQuery().extended(0, 0).extended(1, 1)
        t.selection_ids(q)
        # The one-predicate prefix must now be cached.
        prefix = ConjunctiveQuery().extended(0, 0)
        assert t.selection_ids(prefix) is t.selection_ids(prefix)

    def test_clear_cache(self):
        t = small_table()
        q = ConjunctiveQuery().extended(0, 0)
        first = t.selection_ids(q)
        t.clear_cache()
        assert t.selection_ids(q) is not first
        assert list(t.selection_ids(q)) == list(first)

    def test_cache_eviction_keeps_correctness(self):
        schema = Schema([Attribute("A", 2), Attribute("B", 2), Attribute("C", 2)])
        rows = [[a, b, c] for a in range(2) for b in range(2) for c in range(2)]
        t = HiddenTable.from_rows(schema, rows, max_cached_queries=4)
        for a in range(2):
            for b in range(2):
                q = ConjunctiveQuery().extended(0, a).extended(1, b)
                assert t.count(q) == 2
        # After eviction pressure, results are still correct.
        assert t.count(ConjunctiveQuery().extended(0, 0)) == 4
