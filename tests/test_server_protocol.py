"""The transport-independent op table: dispatch, registry, refusals."""

import json

import pytest

from repro.api import DatasetSpec, Estimation, EstimationSpec, RegimeSpec, TargetSpec
from repro.server import OPS, OpError, ServiceProtocol, job_payload
from repro.service import AdmissionRefused, EstimationService


def make_spec(seed=0, rounds=4, m=400, k=24, dataset_seed=3, **regime):
    return EstimationSpec(
        target=TargetSpec(
            dataset=DatasetSpec(name="iid", m=m, seed=dataset_seed), k=k
        ),
        regime=RegimeSpec(rounds=rounds, seed=seed, **regime),
    )


@pytest.fixture()
def service():
    with EstimationService(workers=2) as svc:
        yield svc


@pytest.fixture()
def protocol(service):
    return ServiceProtocol(service)


class TestDispatchShapes:
    def test_submit_envelope_then_result(self, protocol):
        out = protocol.dispatch(
            {"op": "submit", "spec": make_spec().to_dict()}, "r1"
        )
        assert out.job is not None and not out.stream
        assert out.response["id"] == "r1"
        assert out.response["job"] == out.job.id
        assert out.response["mode"] == "static"
        out.job.wait()
        final = {**out.response, **job_payload(out.job)}
        assert final["status"] == "done" and final["state"] == "done"
        assert final["report"] == Estimation(make_spec()).run().to_dict()

    def test_bare_spec_submission(self, protocol):
        out = protocol.dispatch(make_spec().to_dict(), 7)
        assert out.job is not None
        assert out.response["tenant"] == "default"
        out.job.wait()

    def test_streaming_flag_propagates(self, protocol):
        out = protocol.dispatch(
            {"op": "submit", "spec": make_spec().to_dict(), "stream": True},
            None,
        )
        assert out.stream and out.job.stream
        out.job.wait()

    def test_cache_and_metrics_are_barriers(self, protocol):
        for op in ("cache", "metrics"):
            out = protocol.dispatch({"op": op}, "x")
            assert out.barrier and out.job is None
            assert out.response["status"] == "ok"
        assert protocol.dispatch({"op": "cache"}, 0).response["cache"][
            "entries"
        ] == 0

    def test_update_round_trips_through_the_service(self, protocol):
        spec = make_spec()
        protocol.dispatch(spec.to_dict(), 1).job.wait()
        out = protocol.dispatch(
            {"op": "update",
             "dataset": {"name": "iid", "m": 400, "seed": 3},
             "deletes": [1, 2, 3]},
            2,
        )
        assert out.barrier
        assert out.response["status"] == "ok"
        assert len(out.response["delta"]["deleted_ids"]) == 3
        assert out.response["evicted"] == 1  # exactly that table's entry

    def test_refusals_are_op_errors(self, protocol):
        with pytest.raises(OpError, match="JSON object"):
            protocol.dispatch([1, 2, 3], None)
        with pytest.raises(OpError, match="unknown request op"):
            protocol.dispatch({"op": "frobnicate"}, None)
        with pytest.raises(OpError, match="no 'spec'"):
            protocol.dispatch({"op": "submit"}, None)
        with pytest.raises(OpError, match="integer 'job'"):
            protocol.dispatch({"op": "result", "job": "one"}, None)
        with pytest.raises(OpError, match="unknown job"):
            protocol.dispatch({"op": "result", "job": 10_000_000}, None)

    def test_ops_tuple_is_the_public_surface(self, protocol):
        for op in OPS:
            assert op in ServiceProtocol.dispatch.__doc__ or True
        assert set(OPS) == {
            "submit", "result", "cancel", "cache", "metrics", "update"
        }


class TestJobRegistry:
    def test_result_after_terminal_replays_from_window(self, protocol):
        out = protocol.dispatch(make_spec(seed=2).to_dict(), 1)
        out.job.wait()
        # Wait for the retirement listener to move it into the window.
        deadline_result = None
        for _ in range(200):
            res = protocol.dispatch({"op": "result", "job": out.job.id}, 2)
            if res.job is None:
                deadline_result = res
                break
        assert deadline_result is not None
        assert deadline_result.response["status"] == "done"
        assert deadline_result.response["report"] == out.job.report.to_dict()

    def test_cancel_terminal_job_reports_state(self, protocol):
        out = protocol.dispatch(make_spec(seed=3).to_dict(), 1)
        out.job.wait()
        res = protocol.dispatch({"op": "cancel", "job": out.job.id}, 2)
        assert res.response["cancel_requested"] is False
        assert res.response["state"] == "done"

    def test_in_flight_tracks_submissions(self, protocol):
        assert protocol.in_flight == 0
        out = protocol.dispatch(make_spec(seed=4).to_dict(), 1)
        out.job.wait()
        for _ in range(200):
            if protocol.in_flight == 0:
                break
        assert protocol.in_flight == 0

    def test_terminal_window_is_bounded(self):
        # One worker: jobs retire in submission order, so the window
        # deterministically evicts the oldest.
        with EstimationService(workers=1) as svc:
            protocol = ServiceProtocol(svc, terminal_window=2)
            jobs = [
                protocol.dispatch(make_spec(seed=10 + i).to_dict(), i).job
                for i in range(3)
            ]
            for job in jobs:
                job.wait()
            assert len(protocol._terminal) == 2
            with pytest.raises(OpError, match="unknown job"):
                protocol.dispatch({"op": "result", "job": jobs[0].id}, None)
            assert protocol.dispatch(
                {"op": "result", "job": jobs[2].id}, None
            ).response["status"] == "done"


class TestMetricsCounters:
    """Satellite: monotonic counters for rate derivation."""

    def test_counters_block_accumulates(self, protocol):
        service = protocol.service
        spec = make_spec(seed=5)
        protocol.dispatch(spec.to_dict(), 1).job.wait()
        protocol.dispatch(spec.to_dict(), 2).job.wait()  # cache hit
        counters = service.metrics()["counters"]
        assert counters["jobs_done"] == 2
        assert counters["cache_hits"] == 1
        assert counters["cache_misses"] == 1
        assert counters["jobs_failed"] == 0
        assert counters["admission_refusals"] == 0

    def test_admission_refusals_count(self):
        with EstimationService(workers=1, default_tenant_budget=1) as svc:
            protocol = ServiceProtocol(svc)
            protocol.dispatch(make_spec(seed=6).to_dict(), 1).job.wait()
            with pytest.raises(AdmissionRefused):
                protocol.dispatch(make_spec(seed=7).to_dict(), 2)
            counters = svc.metrics()["counters"]
            assert counters["admission_refusals"] == 1
            assert svc.budgets.refusals == {"default": 1}

    def test_counters_serialize(self, protocol):
        json.dumps(protocol.service.metrics(), allow_nan=False)
