"""Concurrency determinism: the service never changes a result.

The acceptance bar: a batch of >= 8 concurrent submissions returns
reports **byte-identical** to sequential ``Estimation.run`` for the same
seeds, at every service worker count — and streamed snapshot sequences
are equally invariant.  The same holds end-to-end through the
``repro serve`` line protocol.
"""

import io
import json
import select
import subprocess
import sys
from pathlib import Path

from repro.api import (
    AggregateSpec,
    DatasetSpec,
    Estimation,
    EstimationSpec,
    RegimeSpec,
    TargetSpec,
)
from repro.cli import main
from repro.service import EstimationService

WORKER_COUNTS = (1, 2, 8)


def batch_specs():
    """A mixed batch of 8 specs: seeds, stops and aggregates all vary."""
    target = TargetSpec(dataset=DatasetSpec(name="iid", m=400, seed=3), k=24)
    specs = [
        EstimationSpec(target=target, regime=RegimeSpec(rounds=4, seed=seed))
        for seed in range(5)
    ]
    specs.append(
        EstimationSpec(
            target=target, regime=RegimeSpec(query_budget=150, seed=5)
        )
    )
    specs.append(
        EstimationSpec(
            target=target,
            aggregate=AggregateSpec(kind="sum", measure="VALUE"),
            regime=RegimeSpec(rounds=4, seed=6),
        )
    )
    specs.append(
        EstimationSpec(
            target=target,
            aggregate=AggregateSpec(kind="count", condition={"A1": 1}),
            regime=RegimeSpec(rounds=4, seed=7),
        )
    )
    return specs


class TestBatchDeterminism:
    def test_reports_byte_identical_across_worker_counts(self):
        specs = batch_specs()
        sequential = [Estimation(spec).run().to_json() for spec in specs]
        for workers in WORKER_COUNTS:
            with EstimationService(workers=workers, cache_size=0) as service:
                jobs = service.submit_many(specs)
                served = [job.result(120).to_json() for job in jobs]
            assert served == sequential, f"workers={workers} diverged"

    def test_streamed_snapshot_sequences_invariant(self):
        specs = batch_specs()
        sequences = {}
        for workers in WORKER_COUNTS:
            with EstimationService(workers=workers, cache_size=0) as service:
                jobs = [service.submit(spec, stream=True) for spec in specs]
                sequences[workers] = [
                    [snapshot.to_json() for snapshot in job.snapshots()]
                    for job in jobs
                ]
                for job in jobs:
                    job.result(120)
        assert sequences[1] == sequences[2] == sequences[8]
        assert all(len(seq) > 0 for seq in sequences[1])

    def test_interleaved_duplicate_submissions_stay_exact(self):
        # Duplicates racing each other (cache on) must still all report
        # the sequential bytes — hit or miss.
        spec = batch_specs()[0]
        expected = Estimation(spec).run().to_json()
        with EstimationService(workers=8) as service:
            jobs = [service.submit(spec) for _ in range(12)]
            assert all(j.result(120).to_json() == expected for j in jobs)
            cache = service.metrics()["cache"]
            assert cache["hits"] + cache["misses"] == 12


class TestServeInteractiveClient:
    def test_request_response_client_never_deadlocks(self):
        # A client that waits for each reply before sending the next
        # line: emission must be completion-driven, not stdin-driven.
        src = str(Path(__file__).resolve().parent.parent / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--workers", "2"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            text=True, bufsize=1,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
        )
        try:
            for seed in (1, 2):
                spec = batch_specs()[seed].to_json()
                proc.stdin.write(spec + "\n")
                proc.stdin.flush()
                ready, _, _ = select.select([proc.stdout], [], [], 60)
                assert ready, "no response before the next request: deadlock"
                response = json.loads(proc.stdout.readline())
                assert response["status"] == "done"
        finally:
            proc.stdin.close()
            assert proc.wait(30) == 0


class TestServeProtocolDeterminism:
    def run_serve(self, lines, workers, monkeypatch, capsys):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("\n".join(lines) + "\n")
        )
        assert main(["serve", "--workers", str(workers)]) == 0
        out = capsys.readouterr().out
        return [json.loads(line) for line in out.strip().splitlines()]

    def test_serve_batch_matches_sequential_run(self, monkeypatch, capsys):
        specs = batch_specs()
        sequential = [Estimation(spec).run().to_dict() for spec in specs]
        lines = [spec.to_json() for spec in specs]
        responses_by_workers = {
            workers: self.run_serve(lines, workers, monkeypatch, capsys)
            for workers in WORKER_COUNTS
        }
        for workers, responses in responses_by_workers.items():
            assert [r["id"] for r in responses] == list(
                range(1, len(specs) + 1)
            ), "responses must come back in input order"
            assert all(r["status"] == "done" for r in responses)
            assert [r["report"] for r in responses] == sequential, (
                f"serve --workers {workers} diverged from Estimation.run"
            )
