"""Unit tests for attribute ordering and D_UB segmentation."""

import pytest

from repro.core.partition import (
    free_attribute_order,
    segment_attributes,
    segment_domain_size,
)
from repro.datasets import running_example, yahoo_auto_schema
from repro.hidden_db import Attribute, ConjunctiveQuery, Schema


def schema_22225():
    """Domains (2,2,2,2,5) — the paper's Section 4.2.2 worked example."""
    return running_example().schema


class TestFreeAttributeOrder:
    def test_decreasing_fanout_default(self):
        order = free_attribute_order(schema_22225())
        assert order[0] == 4  # A5 has the largest fanout
        assert set(order) == {0, 1, 2, 3, 4}

    def test_condition_removes_attributes(self):
        cond = ConjunctiveQuery().extended(4, 0).extended(0, 1)
        order = free_attribute_order(schema_22225(), cond)
        assert set(order) == {1, 2, 3}

    def test_explicit_order(self):
        order = free_attribute_order(schema_22225(), None, [3, 1, 0, 2, 4])
        assert order == [3, 1, 0, 2, 4]

    def test_explicit_order_with_condition(self):
        cond = ConjunctiveQuery().extended(3, 0)
        order = free_attribute_order(schema_22225(), cond, [3, 1, 0, 2, 4])
        assert order == [1, 0, 2, 4]

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            free_attribute_order(schema_22225(), None, [0, 0, 1])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            free_attribute_order(schema_22225(), None, [0, 9])

    def test_yahoo_order_puts_make_model_first(self):
        schema = yahoo_auto_schema()
        order = free_attribute_order(schema)
        assert order[0] == schema.index_of("MAKE")
        assert order[1] == schema.index_of("MODEL")


class TestSegmentation:
    def test_paper_example_dub_10(self):
        # Section 4.2.2: domains (2,2,2,2,5), DUB=10 ->
        # segments (A1,A2,A3) with |Dom|=8 and (A4,A5) with |Dom|=10.
        schema = schema_22225()
        segments = segment_attributes([0, 1, 2, 3, 4], schema, dub=10)
        assert segments == [[0, 1, 2], [3, 4]]
        assert segment_domain_size(segments[0], schema) == 8
        assert segment_domain_size(segments[1], schema) == 10

    def test_dub_none_disables_partitioning(self):
        schema = schema_22225()
        assert segment_attributes([0, 1, 2, 3, 4], schema, None) == [[0, 1, 2, 3, 4]]

    def test_dub_larger_than_domain_gives_single_segment(self):
        schema = schema_22225()
        assert segment_attributes([0, 1, 2, 3, 4], schema, 10**6) == [[0, 1, 2, 3, 4]]

    def test_boolean_dub_32_gives_five_level_segments(self):
        schema = Schema([Attribute(f"A{i}", 2) for i in range(12)])
        segments = segment_attributes(list(range(12)), schema, 32)
        assert [len(s) for s in segments] == [5, 5, 2]

    def test_every_attribute_in_exactly_one_segment(self):
        schema = yahoo_auto_schema()
        order = free_attribute_order(schema)
        segments = segment_attributes(order, schema, 16)
        flat = [a for seg in segments for a in seg]
        assert flat == list(order)

    def test_segment_sizes_respect_dub(self):
        schema = yahoo_auto_schema()
        order = free_attribute_order(schema)
        for dub in (16, 64, 1024):
            for segment in segment_attributes(order, schema, dub):
                size = segment_domain_size(segment, schema)
                assert size <= dub or len(segment) == 1

    def test_oversized_single_attribute_gets_own_segment(self):
        schema = Schema([Attribute("BIG", 100), Attribute("A", 2)])
        segments = segment_attributes([0, 1], schema, dub=10)
        assert segments == [[0], [1]]

    def test_rejects_empty_order(self):
        with pytest.raises(ValueError):
            segment_attributes([], schema_22225(), 10)

    def test_rejects_tiny_dub(self):
        with pytest.raises(ValueError):
            segment_attributes([0], schema_22225(), 1)
