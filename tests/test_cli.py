"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig06"])
        assert args.figure == "fig06"
        assert args.scale is None
        assert not args.full

    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate"])
        assert args.dataset == "yahoo"
        assert args.rounds is None  # resolved to 20 when no other stop
        assert args.query_budget is None
        assert args.target_precision is None
        assert args.backend == "scan"
        assert args.workers == 1

    def test_federate_defaults(self):
        args = build_parser().parse_args(["federate"])
        assert args.command == "federate"
        assert args.sources == 3
        assert args.policy == "neyman"
        assert args.budget == 2_000
        assert args.workers == 1

    def test_federate_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["federate", "--policy", "magic"])

    def test_estimate_backend_and_workers_flags(self):
        args = build_parser().parse_args(
            ["estimate", "--backend", "bitmap", "--workers", "4"]
        )
        assert args.backend == "bitmap"
        assert args.workers == 4

    def test_estimate_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--backend", "nope"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_track_defaults(self):
        args = build_parser().parse_args(["track"])
        assert args.command == "track"
        assert args.policy == "reissue"
        assert args.epochs == 5
        assert args.churn == pytest.approx(0.05)
        assert args.reissue is None  # reissue-only knob, defaulted later
        assert args.workers == 1

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.workers == 2
        assert args.cache_size == 256
        assert args.tenant_budget is None

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--workers", "8", "--cache-size", "0",
             "--tenant-budget", "5000"]
        )
        assert args.workers == 8
        assert args.cache_size == 0
        assert args.tenant_budget == pytest.approx(5000.0)

    def test_serve_network_flag_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.tcp is None
        assert args.http is False
        assert args.journal is None
        assert args.max_pending == 64
        assert args.idle_timeout == pytest.approx(300.0)

    def test_serve_network_flags(self):
        args = build_parser().parse_args(
            ["serve", "--tcp", "0.0.0.0:9999", "--http",
             "--journal", "/tmp/x.journal", "--max-pending", "4",
             "--idle-timeout", "1.5"]
        )
        assert args.tcp == "0.0.0.0:9999"
        assert args.http is True
        assert args.journal == "/tmp/x.journal"
        assert args.max_pending == 4
        assert args.idle_timeout == pytest.approx(1.5)

    def test_track_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["track", "--policy", "magic"])

    def test_track_invalid_estimator_params_exit_cleanly(self, capsys):
        code = main(["track", "--dataset", "iid", "--m", "200", "--k", "20",
                     "--epochs", "2", "--rounds", "1"])
        assert code == 2
        assert "rounds" in capsys.readouterr().err
        code = main(["track", "--dataset", "iid", "--m", "200", "--k", "20",
                     "--epochs", "2", "--churn", "-0.1"])
        assert code == 2
        assert "non-negative" in capsys.readouterr().err

    def test_track_rejects_reissue_knobs_with_restart(self, capsys):
        assert main(["track", "--policy", "restart", "--reissue", "4"]) == 2
        assert "reissue" in capsys.readouterr().err
        assert main(["track", "--policy", "restart",
                     "--epoch-budget", "100"]) == 2
        assert "reissue" in capsys.readouterr().err


class TestServeExecution:
    SPEC_LINE = json.dumps({
        "target": {"dataset": {"name": "iid", "m": 400, "seed": 3},
                   "federation": None, "k": 24, "backend": "scan",
                   "churn": None},
        "aggregate": {"kind": "size", "measure": None, "condition": None},
        "regime": {"rounds": 3, "query_budget": None,
                   "target_precision": None, "seed": 1, "workers": 1},
        "method": {"r": None, "dub": None, "weight_adjustment": None,
                   "policy": None, "pilot_rounds": None,
                   "reissue_per_epoch": None, "epoch_query_budget": None},
        "schema_version": 1,
    })

    def serve(self, lines, argv, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        code = main(["serve", *argv])
        return code, capsys.readouterr()

    def test_rejects_bad_flags(self, capsys):
        assert main(["serve", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err
        import io, sys  # noqa: F401 - stdin untouched for flag errors

        assert main(["serve", "--cache-size", "-1"]) == 2
        assert "--cache-size" in capsys.readouterr().err

    def test_malformed_lines_become_error_responses(self, monkeypatch, capsys):
        lines = ["not json", "[1, 2]", '{"op": "wat"}',
                 '{"op": "update"}', self.SPEC_LINE]
        code, captured = self.serve(lines, [], monkeypatch, capsys)
        assert code == 0
        responses = [json.loads(l) for l in captured.out.strip().splitlines()]
        assert [r["status"] for r in responses] == [
            "error", "error", "error", "error", "done",
        ]
        assert "JSON object" in responses[1]["error"]
        assert "unknown request op" in responses[2]["error"]

    def test_tenant_budget_refuses_over_the_wire(self, monkeypatch, capsys):
        # The metrics barrier settles job 1's spend, so line 3 is refused
        # deterministically (admission reads settled spend only).
        lines = [self.SPEC_LINE, json.dumps({"op": "metrics"}),
                 self.SPEC_LINE]
        code, captured = self.serve(
            lines, ["--tenant-budget", "1", "--cache-size", "0"],
            monkeypatch, capsys,
        )
        assert code == 0
        responses = [json.loads(l) for l in captured.out.strip().splitlines()]
        assert responses[0]["status"] == "done"
        ledger = responses[1]["metrics"]["tenants"]["default"]
        assert ledger["spent"] > 1
        assert responses[2]["status"] == "error"
        assert "exhausted" in responses[2]["error"]

    def test_rejects_bad_network_flags(self, capsys):
        assert main(["serve", "--http"]) == 2
        assert "--http requires --tcp" in capsys.readouterr().err
        assert main(["serve", "--tcp", "nocolon"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err
        assert main(["serve", "--tcp", "host:notaport"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err
        assert main(["serve", "--max-pending", "0"]) == 2
        assert "--max-pending" in capsys.readouterr().err

    def test_cancel_and_result_ops_over_stdio(self, monkeypatch, capsys):
        lines = [
            json.dumps({"op": "submit", "id": "a",
                        "spec": json.loads(self.SPEC_LINE)}),
            json.dumps({"op": "result", "id": "b", "job": 10**9}),
        ]
        code, captured = self.serve(lines, [], monkeypatch, capsys)
        assert code == 0
        responses = [json.loads(l) for l in captured.out.strip().splitlines()]
        assert responses[0]["id"] == "a"
        assert responses[0]["status"] == "done"
        assert responses[0]["state"] == "done"
        assert responses[1]["status"] == "error"
        assert "unknown job" in responses[1]["error"]

    def test_journal_round_trips_across_serve_invocations(
        self, tmp_path, monkeypatch, capsys
    ):
        journal = str(tmp_path / "serve.journal")
        code, captured = self.serve(
            [self.SPEC_LINE], ["--journal", journal], monkeypatch, capsys
        )
        assert code == 0
        first = json.loads(captured.out.strip().splitlines()[0])
        assert first["status"] == "done"
        job_id = first["job"]
        # Second invocation replays the journal: the terminal job is
        # re-reported (replayed) and the warm cache serves a resubmission
        # without re-running the estimation.
        code, captured = self.serve(
            [json.dumps({"op": "result", "id": "r", "job": job_id}),
             self.SPEC_LINE],
            ["--journal", journal], monkeypatch, capsys,
        )
        assert code == 0
        responses = [json.loads(l) for l in captured.out.strip().splitlines()]
        assert responses[0]["status"] == "done"
        assert responses[0]["replayed"] is True
        assert responses[0]["report"] == first["report"]
        assert responses[1]["status"] == "done"
        assert responses[1]["cached"] is True


class TestExecution:
    def test_list_prints_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out and "fig19" in out and "table_r" in out

    def test_run_unknown_figure(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_figure_tiny(self, capsys):
        assert main(["run", "fig18", "--scale", "tiny", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "fig18" in out

    def test_run_figure_json(self, capsys):
        assert main(["run", "fig18", "--scale", "tiny", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["figure_id"] == "fig18"
        assert len(payload["rows"]) == 10

    def test_estimate_command(self, capsys):
        code = main([
            "estimate", "--dataset", "iid", "--m", "1000", "--k", "20",
            "--rounds", "5", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "estimate=" in out and "m=1000" in out

    def test_estimate_backend_independent(self, capsys):
        base = ["estimate", "--dataset", "iid", "--m", "500", "--k", "20",
                "--rounds", "4", "--seed", "3"]
        assert main(base + ["--backend", "scan"]) == 0
        scan_out = capsys.readouterr().out
        assert main(base + ["--backend", "bitmap"]) == 0
        bitmap_out = capsys.readouterr().out
        assert scan_out.splitlines()[-1] == bitmap_out.splitlines()[-1]
        assert "backend=bitmap" in bitmap_out

    def test_estimate_parallel_workers(self, capsys):
        code = main([
            "estimate", "--dataset", "iid", "--m", "500", "--k", "20",
            "--rounds", "4", "--seed", "3", "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "workers=2" in out and "estimate=" in out

    def test_estimate_query_budget(self, capsys):
        base = ["estimate", "--dataset", "iid", "--m", "500", "--k", "20",
                "--query-budget", "150", "--seed", "3"]
        assert main(base) == 0
        out = capsys.readouterr().out
        assert "stop=" in out
        # Budgets compose with --workers now (leases, not raw counters).
        assert main(base + ["--workers", "2"]) == 0
        assert "stop=budget" in capsys.readouterr().out

    def test_estimate_target_precision(self, capsys):
        code = main([
            "estimate", "--dataset", "iid", "--m", "500", "--k", "20",
            "--target-precision", "0.25", "--seed", "3",
        ])
        assert code == 0
        assert "stop=precision" in capsys.readouterr().out

    def test_estimate_precision_rejects_workers(self, capsys):
        code = main([
            "estimate", "--dataset", "iid", "--m", "500", "--k", "20",
            "--target-precision", "0.25", "--workers", "2",
        ])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_estimate_invalid_budget_and_precision(self, capsys):
        assert main(["estimate", "--query-budget", "0"]) == 2
        capsys.readouterr()
        assert main(["estimate", "--target-precision", "-1"]) == 2

    def test_federate_command(self, capsys):
        code = main([
            "federate", "--sources", "3", "--m", "250", "--k", "16",
            "--budget", "500", "--policy", "neyman", "--pilot-rounds", "2",
            "--seed", "7",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "policy=neyman" in out
        assert out.count("source_0") == 3
        assert "total=" in out and "truth=" in out

    def test_federate_json_and_worker_invariance(self, capsys):
        base = ["federate", "--sources", "2", "--m", "250", "--k", "16",
                "--budget", "400", "--policy", "uniform",
                "--pilot-rounds", "2", "--seed", "7", "--json"]
        assert main(base + ["--workers", "1"]) == 0
        one = json.loads(capsys.readouterr().out.strip())
        assert main(base + ["--workers", "3"]) == 0
        many = json.loads(capsys.readouterr().out.strip())
        assert one == many  # worker-count invariance of the whole payload
        assert one["policy"] == "uniform"
        assert len(one["per_source"]) == 2
        assert one["truth"] > 0
        assert one["total_queries"] == sum(
            entry["queries"] for entry in one["per_source"]
        )

    def test_federate_budget_too_small_exits_cleanly(self, capsys):
        code = main([
            "federate", "--sources", "3", "--m", "250", "--budget", "5",
            "--seed", "7",
        ])
        assert code == 2
        assert "pilot" in capsys.readouterr().err

    def test_track_command(self, capsys):
        code = main([
            "track", "--dataset", "iid", "--m", "500", "--k", "25",
            "--epochs", "3", "--churn", "0.1", "--rounds", "8",
            "--reissue", "3", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "policy=reissue" in out
        assert out.count("epoch") == 3
        assert "total queries:" in out

    def test_track_json_and_worker_invariance(self, capsys):
        base = ["track", "--dataset", "iid", "--m", "500", "--k", "25",
                "--epochs", "3", "--churn", "0.1", "--rounds", "8",
                "--reissue", "3", "--seed", "2", "--json"]
        assert main(base + ["--workers", "1"]) == 0
        one = json.loads(capsys.readouterr().out.strip())
        assert main(base + ["--workers", "3"]) == 0
        many = json.loads(capsys.readouterr().out.strip())
        assert one == many  # worker-count invariance of the whole payload
        assert one["policy"] == "reissue"
        assert len(one["epochs"]) == 3
        assert one["epochs"][1]["reissued"] == 3

    def test_track_restart_policy(self, capsys):
        code = main([
            "track", "--dataset", "iid", "--m", "400", "--k", "25",
            "--epochs", "2", "--policy", "restart", "--rounds", "6",
            "--seed", "2",
        ])
        assert code == 0
        assert "policy=restart" in capsys.readouterr().out

    def test_tune_command(self, capsys):
        code = main([
            "tune", "--dataset", "iid", "--m", "1000", "--k", "20",
            "--budget", "300", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "suggested r=" in out and "DUB=" in out
