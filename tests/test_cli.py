"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig06"])
        assert args.figure == "fig06"
        assert args.scale is None
        assert not args.full

    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate"])
        assert args.dataset == "yahoo"
        assert args.rounds == 20
        assert args.backend == "scan"
        assert args.workers == 1

    def test_estimate_backend_and_workers_flags(self):
        args = build_parser().parse_args(
            ["estimate", "--backend", "bitmap", "--workers", "4"]
        )
        assert args.backend == "bitmap"
        assert args.workers == 4

    def test_estimate_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--backend", "nope"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list_prints_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig06" in out and "fig19" in out and "table_r" in out

    def test_run_unknown_figure(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_figure_tiny(self, capsys):
        assert main(["run", "fig18", "--scale", "tiny", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "fig18" in out

    def test_run_figure_json(self, capsys):
        assert main(["run", "fig18", "--scale", "tiny", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["figure_id"] == "fig18"
        assert len(payload["rows"]) == 10

    def test_estimate_command(self, capsys):
        code = main([
            "estimate", "--dataset", "iid", "--m", "1000", "--k", "20",
            "--rounds", "5", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "estimate=" in out and "m=1000" in out

    def test_estimate_backend_independent(self, capsys):
        base = ["estimate", "--dataset", "iid", "--m", "500", "--k", "20",
                "--rounds", "4", "--seed", "3"]
        assert main(base + ["--backend", "scan"]) == 0
        scan_out = capsys.readouterr().out
        assert main(base + ["--backend", "bitmap"]) == 0
        bitmap_out = capsys.readouterr().out
        assert scan_out.splitlines()[-1] == bitmap_out.splitlines()[-1]
        assert "backend=bitmap" in bitmap_out

    def test_estimate_parallel_workers(self, capsys):
        code = main([
            "estimate", "--dataset", "iid", "--m", "500", "--k", "20",
            "--rounds", "4", "--seed", "3", "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "workers=2" in out and "estimate=" in out

    def test_tune_command(self, capsys):
        code = main([
            "tune", "--dataset", "iid", "--m", "1000", "--k", "20",
            "--budget", "300", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "suggested r=" in out and "DUB=" in out
