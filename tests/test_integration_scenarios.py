"""Cross-module integration scenarios.

These tests wire several subsystems together the way a downstream user
would: estimators against crawl-derived ground truth, determinism across
runs, cache-independence of the estimates, and budget failure injection.
"""

import pytest

from repro.core import BoolUnbiasedSize, HDUnbiasedAgg, HDUnbiasedSize
from repro.core.estimators import resolve_condition
from repro.datasets import boolean_table, yahoo_auto
from repro.hidden_db import (
    ConjunctiveQuery,
    HiddenDBClient,
    QueryCounter,
    QueryLimitExceeded,
    TopKInterface,
    crawl,
)


def client_for(table, k, cache=True, limit=None):
    return HiddenDBClient(
        TopKInterface(table, k, counter=QueryCounter(limit=limit)), cache=cache
    )


class TestEstimateVsCrawl:
    """The estimator and the crawler see the same form; their answers must
    agree (statistically) while their costs differ wildly."""

    def test_estimate_matches_crawl_at_fraction_of_cost(self):
        table = boolean_table(3_000, [0.5] * 13, seed=41)
        crawl_client = client_for(table, k=10)
        crawl_result = crawl(crawl_client)
        est_client = client_for(table, k=10)
        estimator = HDUnbiasedSize(est_client, r=3, dub=16, seed=42)
        result = estimator.run(rounds=15)
        assert crawl_result.size == 3_000
        assert result.mean == pytest.approx(3_000, rel=0.25)
        assert est_client.cost < crawl_result.query_cost / 2

    def test_conditioned_estimate_matches_subtree_crawl(self):
        table = yahoo_auto(m=2_000, seed=43)
        schema = table.schema
        condition = {"MAKE": "Ford"}
        root = resolve_condition(schema, condition)
        crawl_result = crawl(client_for(table, k=50), root=root)
        estimator = HDUnbiasedSize(
            client_for(table, k=50), r=4, dub=32, condition=condition, seed=44
        )
        result = estimator.run(rounds=40)
        assert result.mean == pytest.approx(crawl_result.size, rel=0.4)


class TestDeterminism:
    def test_same_seed_same_session(self):
        table = boolean_table(500, [0.5] * 10, seed=45)
        results = []
        for _ in range(2):
            estimator = HDUnbiasedSize(
                client_for(table, 10), r=3, dub=8, seed=46
            )
            results.append(estimator.run(rounds=8))
        assert results[0].estimates == results[1].estimates
        assert results[0].total_cost == results[1].total_cost

    def test_cache_does_not_change_estimates(self):
        # The cache changes what is *charged*, never what is *answered*:
        # the same seed must produce identical estimates with and without
        # caching, at different cost.
        table = boolean_table(500, [0.5] * 10, seed=47)
        cached = HDUnbiasedSize(
            client_for(table, 10, cache=True), r=3, dub=8, seed=48
        ).run(rounds=8)
        uncached = HDUnbiasedSize(
            client_for(table, 10, cache=False), r=3, dub=8, seed=48
        ).run(rounds=8)
        assert cached.estimates == uncached.estimates
        assert cached.total_cost < uncached.total_cost


class TestAggregatesAgainstGroundTruth:
    def test_sum_count_avg_triangle(self):
        # SUM / COUNT estimated from the same interface must satisfy the
        # AVG ratio the estimator reports.
        table = yahoo_auto(m=2_000, seed=49)
        estimator = HDUnbiasedAgg(
            client_for(table, 50), aggregate="avg", measure="PRICE",
            r=4, dub=32, seed=50,
        )
        result = estimator.run(rounds=30)
        true_avg = float(table.measure("PRICE").mean())
        assert result.mean == pytest.approx(true_avg, rel=0.3)


class TestFailureInjection:
    def test_budget_dies_mid_session(self):
        table = boolean_table(800, [0.5] * 12, seed=51)
        estimator = HDUnbiasedSize(
            client_for(table, 10, limit=90), r=3, dub=16, seed=52
        )
        result = estimator.run(rounds=1_000)
        assert result.rounds >= 1
        assert result.total_cost <= 90
        # Estimates collected before the cut are still usable.
        assert result.mean > 0

    def test_budget_dies_during_crawl(self):
        table = boolean_table(800, [0.5] * 12, seed=53)
        with pytest.raises(QueryLimitExceeded):
            crawl(client_for(table, k=10, limit=20))

    def test_bool_estimator_with_one_query_budget(self):
        # k above m: the very first (root) query answers exactly.
        table = boolean_table(30, [0.5] * 8, seed=54)
        estimator = BoolUnbiasedSize(client_for(table, 50, limit=1), seed=55)
        assert estimator.run_once().value == 30.0


class TestSessionComposition:
    def test_sequential_sessions_share_cache_but_not_statistics(self):
        table = boolean_table(500, [0.5] * 10, seed=56)
        client = client_for(table, 10)
        first = HDUnbiasedSize(client, r=3, dub=8, seed=57).run(rounds=6)
        second = HDUnbiasedSize(client, r=3, dub=8, seed=58).run(rounds=6)
        # The second session benefits from the warm cache.
        assert second.total_cost <= first.total_cost
        assert len(second.estimates) == 6

    def test_weight_store_improves_across_rounds(self):
        # Later rounds of one session tend to be cheaper and tighter: at
        # minimum the session must complete and stay positive.
        table = boolean_table(500, [0.5, 0.5, 0.1, 0.2, 0.3, 0.15, 0.4,
                                    0.25, 0.1, 0.35], seed=59)
        estimator = HDUnbiasedSize(client_for(table, 10), r=3, dub=8, seed=60)
        result = estimator.run(rounds=25)
        assert all(e >= 0 for e in result.estimates)
        assert result.mean == pytest.approx(500, rel=0.4)
