"""Unit tests for adaptive-precision sessions (run_until)."""

import pytest

from repro.core import HDUnbiasedSize
from repro.datasets import boolean_table
from repro.hidden_db import HiddenDBClient, QueryCounter, TopKInterface


def client_for(table, k=10, limit=None):
    return HiddenDBClient(TopKInterface(table, k, counter=QueryCounter(limit=limit)))


@pytest.fixture(scope="module")
def table():
    return boolean_table(1_000, [0.5] * 12, seed=71)


class TestRunUntil:
    def test_stops_when_precise_enough(self, table):
        estimator = HDUnbiasedSize(client_for(table), r=3, dub=16, seed=1)
        result = estimator.run_until(target_relative_halfwidth=0.10)
        z_half = 1.96 * result.std_error
        assert z_half <= 0.10 * abs(result.mean) * 1.0001
        assert result.rounds >= 5
        assert result.stop_reason == "precision"

    def test_tighter_target_needs_more_rounds(self, table):
        loose = HDUnbiasedSize(client_for(table), r=3, dub=16, seed=2)
        tight = HDUnbiasedSize(client_for(table), r=3, dub=16, seed=2)
        loose_result = loose.run_until(0.25, max_rounds=400)
        tight_result = tight.run_until(0.05, max_rounds=400)
        assert tight_result.rounds >= loose_result.rounds

    def test_max_rounds_cap(self, table):
        estimator = HDUnbiasedSize(client_for(table), r=2, dub=16, seed=3)
        result = estimator.run_until(1e-9, max_rounds=7)
        assert result.rounds == 7
        assert result.stop_reason == "max_rounds"

    def test_budget_cap(self, table):
        estimator = HDUnbiasedSize(client_for(table), r=2, dub=16, seed=4)
        result = estimator.run_until(1e-9, max_rounds=10_000, query_budget=80)
        assert result.total_cost >= 80 or result.rounds >= 1
        assert result.stop_reason == "budget"

    def test_result_is_accurate(self, table):
        estimator = HDUnbiasedSize(client_for(table), r=3, dub=16, seed=5)
        result = estimator.run_until(0.10)
        assert result.mean == pytest.approx(1_000, rel=0.3)

    def test_validation(self, table):
        estimator = HDUnbiasedSize(client_for(table), r=2, dub=16, seed=6)
        with pytest.raises(ValueError):
            estimator.run_until(0.0)
        with pytest.raises(ValueError):
            estimator.run_until(0.1, min_rounds=1)

    def test_hard_limit_mid_session(self, table):
        estimator = HDUnbiasedSize(
            client_for(table, limit=60), r=2, dub=16, seed=7
        )
        result = estimator.run_until(1e-9, max_rounds=10_000)
        assert result.rounds >= 1
        assert result.total_cost <= 60
        assert result.stop_reason == "hard_limit"


class TestStopReasonAlwaysConcrete:
    """Every session end — and every construction path — reports a reason."""

    def test_run_rounds_reports_rounds(self, table):
        estimator = HDUnbiasedSize(client_for(table), r=2, dub=16, seed=8)
        assert estimator.run(rounds=3).stop_reason == "rounds"

    def test_parallel_run_reports_rounds(self, table):
        estimator = HDUnbiasedSize(client_for(table), r=2, dub=16, seed=8)
        assert estimator.run(rounds=3, workers=2).stop_reason == "rounds"

    def test_run_budget_reports_budget(self, table):
        estimator = HDUnbiasedSize(client_for(table), r=2, dub=16, seed=9)
        assert estimator.run(query_budget=60).stop_reason == "budget"

    def test_legacy_construction_defaults_to_rounds(self):
        from repro.core import EstimationResult
        from repro.utils.stats import StreamingMeanSeries

        legacy = EstimationResult(
            estimates=[1.0, 2.0],
            mean=1.5,
            std_error=0.5,
            ci95=(0.5, 2.5),
            total_cost=10,
            rounds=2,
            trajectory=StreamingMeanSeries(),
        )
        assert legacy.stop_reason == "rounds"
        assert not legacy.stalled

    def test_explicit_none_is_coerced(self):
        from repro.core import EstimationResult
        from repro.utils.stats import StreamingMeanSeries

        coerced = EstimationResult(
            estimates=[1.0],
            mean=1.0,
            std_error=float("nan"),
            ci95=(float("nan"), float("nan")),
            total_cost=5,
            rounds=1,
            trajectory=StreamingMeanSeries(),
            stop_reason=None,
        )
        assert coerced.stop_reason == "rounds"

    def test_merge_rounds_without_reason_reports_rounds(self, table):
        from repro.core.engine import merge_rounds

        estimator = HDUnbiasedSize(client_for(table), r=2, dub=16, seed=10)
        rounds = [estimator.run_once() for _ in range(2)]
        merged = merge_rounds(rounds, estimator._statistic, estimator._dims)
        assert merged.stop_reason == "rounds"


class TestPartialCrawl:
    def test_partial_crawl_lower_bound(self, table):
        from repro.hidden_db import crawl

        client = client_for(table)
        partial = crawl(client, max_queries=40, budget_action="partial")
        assert not partial.complete
        assert 0 <= partial.size < 1_000

        full = crawl(client_for(table))
        assert full.complete
        assert full.size == 1_000
        assert partial.size <= full.size

    def test_unknown_budget_action(self, table):
        from repro.hidden_db import crawl

        with pytest.raises(ValueError):
            crawl(client_for(table), max_queries=10, budget_action="explode")
