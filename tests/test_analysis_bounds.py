"""Unit tests for the closed-form bounds (Corollaries 1-2, Theorems 3-4,
Eq. 2)."""



import pytest
from repro.analysis import (
    corollary1_worst_case_variance,
    corollary2_weight_adjusted_variance,
    smart_backtracking_expected_probes,
    theorem3_variance_upper_bound,
    theorem4_dnc_variance_ratio,
    theorem2_variance,
)
from repro.datasets import worst_case


class TestCorollary1:
    def test_formula(self):
        # k^2 * prod(first n-1 fanouts) - m^2
        assert corollary1_worst_case_variance([2, 2, 2], m=3, k=2) == 4 * 4 - 9

    def test_paper_style_magnitude(self):
        v = corollary1_worst_case_variance([2] * 40, m=10**4, k=1)
        assert v > 2**38

    def test_can_be_vacuous_for_large_m(self):
        # For m^2 > k^2 |Dom(A1..An-1)| the lower bound is negative, i.e.
        # carries no information — mirroring the paper's framing that the
        # bound matters when the domain dwarfs the database.
        assert corollary1_worst_case_variance([2] * 40, m=10**6, k=1) < 0

    def test_validation(self):
        with pytest.raises(ValueError):
            corollary1_worst_case_variance([], 1, 1)


class TestCorollary2:
    def test_more_drilldowns_lower_bound(self):
        high = corollary2_weight_adjusted_variance(30, 10_000, r=2)
        low = corollary2_weight_adjusted_variance(30, 10_000, r=1024)
        assert low < high

    def test_paper_example(self):
        # Section 4.1.2: 40 attributes, 100,000 tuples, 1,000 drill downs
        # -> s^2 >= ~354 m^2.
        m = 100_000
        bound = corollary2_weight_adjusted_variance(40, m, r=1000)
        assert bound / m**2 == pytest.approx(354.29, rel=0.01)

    def test_saturates_at_zero(self):
        assert corollary2_weight_adjusted_variance(4, 10, r=1 << 10) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            corollary2_weight_adjusted_variance(10, 10, r=0)


class TestTheorem3:
    def test_formula(self):
        assert theorem3_variance_upper_bound(10, 100) == 100 * (10 - 1)

    def test_bound_holds_for_worst_case_table(self):
        table = worst_case(8)
        exact = theorem2_variance(table, 1, list(range(8)))
        bound = theorem3_variance_upper_bound(9, 2**8)
        assert exact <= bound + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem3_variance_upper_bound(0, 100)


class TestTheorem4:
    def test_ratio_grows_with_r(self):
        small = theorem4_dnc_variance_ratio(2, 2**40, 32)
        big = theorem4_dnc_variance_ratio(8, 2**40, 32)
        assert big > small

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem4_dnc_variance_ratio(0, 100, 16)
        with pytest.raises(ValueError):
            theorem4_dnc_variance_ratio(2, 100, 1)


class TestEq2SmartBacktrackingCost:
    def test_figure_3_example_is_3_6(self):
        # Branches (q1..q5): non-empty, empty, non-empty, empty, empty.
        pattern = [False, True, False, True, True]
        assert smart_backtracking_expected_probes(pattern) == pytest.approx(3.6)

    def test_all_nonempty_boolean(self):
        # Two non-empty branches: QC = 1 + (1+1)/2 = 2.
        assert smart_backtracking_expected_probes([False, False]) == pytest.approx(2.0)

    def test_single_nonempty_among_w(self):
        # One non-empty branch in w=4: run length 3 -> 1 + 16/4 = 5.
        assert smart_backtracking_expected_probes(
            [True, True, False, True]
        ) == pytest.approx(5.0)

    def test_rejects_all_empty(self):
        with pytest.raises(ValueError):
            smart_backtracking_expected_probes([True, True])

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            smart_backtracking_expected_probes([])

    def test_larger_fanout_attribute_later_costs_more(self):
        # Section 5.1's ordering argument: the same empty fraction on a
        # larger fanout yields a larger expected probe count.
        small = smart_backtracking_expected_probes([False, True] * 2)
        large = smart_backtracking_expected_probes([False, True, True, True] * 2)
        assert large > small
