"""Section 4.1.1's perfect-alignment claim, tested literally.

With branch weights proportional to the *true* subtree counts, the paper
states that every top-valid node q is reached with probability exactly
``|q|/m`` and the estimate collapses to m with zero variance.  Passing
these tests requires every piece of the walker's probability accounting
(weighted picks, smart-backtracking windows, Boolean shortcuts) to be
exact — it is the sharpest end-to-end validation in the suite.
"""

import numpy as np
import pytest

from repro.core import OracleWeights
from repro.core.drilldown import Walker, WalkKind
from repro.datasets import boolean_table, running_example, worst_case
from repro.hidden_db import ConjunctiveQuery, HiddenDBClient, TopKInterface


def oracle_walker(table, k, seed):
    client = HiddenDBClient(TopKInterface(table, k))
    return Walker(client, OracleWeights(table), np.random.default_rng(seed))


class TestPerfectAlignment:
    def test_every_walk_estimates_exactly_m(self):
        table = boolean_table(300, [0.5, 0.5, 0.2, 0.3, 0.4, 0.15, 0.25,
                                    0.35, 0.45, 0.3], seed=5)
        order = list(range(10))
        for seed in range(40):
            walker = oracle_walker(table, 5, seed)
            out = walker.drill_down(ConjunctiveQuery(), order)
            assert out.kind is WalkKind.TOP_VALID
            estimate = out.result.num_returned / out.probability
            assert estimate == pytest.approx(300.0, rel=1e-9)

    def test_probability_equals_count_share(self):
        table = running_example()
        for seed in range(30):
            walker = oracle_walker(table, 1, seed)
            out = walker.drill_down(ConjunctiveQuery(), [0, 1, 2, 3, 4])
            assert out.probability == pytest.approx(
                out.result.num_returned / 6.0
            )

    def test_zero_variance_even_on_worst_case(self):
        # Figure 4's nightmare table is completely tamed by perfect
        # alignment: every walk returns m = n + 1 exactly.
        table = worst_case(10)
        estimates = []
        for seed in range(30):
            walker = oracle_walker(table, 1, seed)
            out = walker.drill_down(ConjunctiveQuery(), list(range(10)))
            estimates.append(out.result.num_returned / out.probability)
        assert np.allclose(estimates, 11.0)

    def test_oracle_never_backtracks(self):
        # Zero-probability (empty) branches are never picked, so the
        # landing probability is always the picked branch's own weight.
        table = worst_case(8)
        walker = oracle_walker(table, 1, seed=3)
        out = walker.drill_down(ConjunctiveQuery(), list(range(8)))
        for step in out.steps:
            assert 0 < step.probability <= 1.0

    def test_oracle_with_dnc_still_exact(self):
        # Divide-&-conquer on top of perfect weights keeps the zero
        # variance: each pass averages r walks that each estimate m.
        from repro.core.divide_conquer import estimate_tree
        from repro.core.partition import segment_attributes

        table = boolean_table(300, [0.5, 0.5, 0.2, 0.3, 0.4, 0.15, 0.25,
                                    0.35, 0.45, 0.3], seed=5)
        client = HiddenDBClient(TopKInterface(table, 5))
        walker = Walker(client, OracleWeights(table), np.random.default_rng(9))
        segments = segment_attributes(list(range(10)), table.schema, 8)
        est = estimate_tree(
            walker, ConjunctiveQuery(), segments, r=2,
            mass_fn=lambda res: np.array([float(res.num_returned)]), dims=1,
        )
        assert est.values[0] == pytest.approx(300.0, rel=1e-9)

    def test_empty_node_distribution_falls_back_uniform(self):
        table = running_example()
        oracle = OracleWeights(table)
        # A node with no tuples under it: uniform fallback, no crash.
        empty_key = frozenset({(4, 1)})  # A5='2' matches nothing
        dist = oracle.branch_distribution(empty_key, 0, 2)
        assert np.allclose(dist, 0.5)
