"""Integration tests for the public size estimators."""


import pytest
import numpy as np

from repro.core import BoolUnbiasedSize, HDUnbiasedSize
from repro.datasets import boolean_table, running_example
from repro.hidden_db import (
    ConjunctiveQuery,
    HiddenDBClient,
    InvalidQueryError,
    QueryCounter,
    QueryLimitExceeded,
    TopKInterface,
)


def client_for(table, k, limit=None):
    return HiddenDBClient(TopKInterface(table, k, counter=QueryCounter(limit=limit)))


class TestRunOnce:
    def test_round_estimate_fields(self, small_bool_table):
        est = HDUnbiasedSize(client_for(small_bool_table, 5), r=2, dub=8, seed=1)
        round_est = est.run_once()
        assert round_est.value > 0
        assert round_est.cost > 0
        assert round_est.walks >= 2

    def test_valid_root_is_exact(self):
        table = boolean_table(8, [0.5] * 6, seed=2)
        est = HDUnbiasedSize(client_for(table, 20), seed=1)
        assert est.run_once().value == 8.0

    def test_empty_condition_gives_zero(self):
        table = running_example()
        est = HDUnbiasedSize(
            client_for(table, 1), condition={"A5": "2"}, seed=1
        )
        assert est.run_once().value == 0.0

    def test_run_once_zero_cost_when_cached(self, small_bool_table):
        client = client_for(small_bool_table, 5)
        est = BoolUnbiasedSize(client, seed=3)
        costs = [est.run_once().cost for _ in range(400)]
        assert costs[0] > 0
        assert min(costs) == 0  # eventually a fully cached walk occurs


class TestRun:
    def test_rounds_mode(self, small_bool_table):
        est = HDUnbiasedSize(client_for(small_bool_table, 5), r=2, dub=8, seed=4)
        result = est.run(rounds=10)
        assert result.rounds == 10
        assert len(result.estimates) == 10
        assert result.total_cost > 0
        assert len(result.trajectory) == 10

    def test_budget_mode(self, small_bool_table):
        est = HDUnbiasedSize(client_for(small_bool_table, 5), r=2, dub=8, seed=5)
        result = est.run(query_budget=150)
        # The last round may overshoot, but not by more than one round.
        assert result.total_cost >= 150 or result.rounds >= 1

    def test_requires_some_stopping_rule(self, small_bool_table):
        est = HDUnbiasedSize(client_for(small_bool_table, 5), seed=1)
        with pytest.raises(ValueError):
            est.run()

    def test_mean_matches_average_of_rounds(self, small_bool_table):
        est = HDUnbiasedSize(client_for(small_bool_table, 5), r=2, dub=8, seed=6)
        result = est.run(rounds=7)
        assert result.mean == pytest.approx(np.mean(result.estimates))

    def test_trajectory_costs_monotone(self, small_bool_table):
        est = HDUnbiasedSize(client_for(small_bool_table, 5), r=2, dub=8, seed=7)
        result = est.run(rounds=12)
        assert result.trajectory.xs == sorted(result.trajectory.xs)

    def test_ci_contains_truth_usually(self, small_bool_table):
        est = HDUnbiasedSize(client_for(small_bool_table, 5), r=3, dub=8, seed=8)
        result = est.run(rounds=60)
        low, high = result.ci95
        assert low < 300 < high

    def test_hard_limit_stops_gracefully(self, small_bool_table):
        est = HDUnbiasedSize(
            client_for(small_bool_table, 5, limit=120), r=2, dub=8, seed=9
        )
        result = est.run(rounds=10_000)
        assert result.rounds >= 1
        assert result.total_cost <= 120

    def test_hard_limit_before_first_round_raises(self, small_bool_table):
        est = HDUnbiasedSize(
            client_for(small_bool_table, 5, limit=1), r=2, dub=8, seed=10
        )
        with pytest.raises(QueryLimitExceeded):
            est.run(rounds=3)

    def test_budget_only_session_terminates_when_cached(self):
        # Tiny table: the cache soon answers everything; the stall guard
        # must end the session even though the budget is never reached.
        table = boolean_table(30, [0.5] * 6, seed=11)
        est = BoolUnbiasedSize(client_for(table, 2), seed=12)
        result = est.run(query_budget=100_000)
        assert result.rounds < 10_000


class TestConvergence:
    def test_bool_converges_to_truth(self, small_bool_table):
        est = BoolUnbiasedSize(client_for(small_bool_table, 5), seed=13)
        result = est.run(rounds=300)
        assert result.mean == pytest.approx(300, rel=0.15)

    def test_hd_converges_to_truth(self, small_bool_table):
        est = HDUnbiasedSize(client_for(small_bool_table, 5), r=3, dub=8, seed=14)
        result = est.run(rounds=80)
        assert result.mean == pytest.approx(300, rel=0.15)

    def test_hd_on_categorical_yahoo(self, small_yahoo_table):
        est = HDUnbiasedSize(client_for(small_yahoo_table, 50), r=4, dub=32, seed=15)
        result = est.run(rounds=40)
        assert result.mean == pytest.approx(1_500, rel=0.35)


class TestConditions:
    def test_count_under_condition(self, small_yahoo_table):
        schema = small_yahoo_table.schema
        condition = {"MAKE": "Toyota"}
        truth = small_yahoo_table.count(
            ConjunctiveQuery().extended(schema.index_of("MAKE"), 0)
        )
        est = HDUnbiasedSize(
            client_for(small_yahoo_table, 50), r=4, dub=32,
            condition=condition, seed=16,
        )
        result = est.run(rounds=40)
        assert result.mean == pytest.approx(truth, rel=0.4)

    def test_condition_fixing_everything_rejected(self):
        table = running_example()
        condition = {"A1": 0, "A2": 0, "A3": 0, "A4": 0, "A5": "1"}
        with pytest.raises(InvalidQueryError):
            HDUnbiasedSize(client_for(table, 1), condition=condition)

    def test_invalid_r(self, small_bool_table):
        with pytest.raises(ValueError):
            HDUnbiasedSize(client_for(small_bool_table, 5), r=0)


class TestBoolUnbiasedSize:
    def test_is_parameterless_plain_walker(self, small_bool_table):
        est = BoolUnbiasedSize(client_for(small_bool_table, 5), seed=17)
        assert est.r == 1
        assert est.dub is None
        assert not est.weight_adjustment
        assert len(est.segments) == 1

    def test_one_walk_per_round(self, small_bool_table):
        est = BoolUnbiasedSize(client_for(small_bool_table, 5), seed=18)
        round_est = est.run_once()
        assert round_est.walks == 1
