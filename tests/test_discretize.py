"""Unit tests for numeric-column discretisation (Section 2.1's premise)."""

import numpy as np
import pytest

from repro.hidden_db import (
    ConjunctiveQuery,
    HiddenDBClient,
    SchemaError,
    TopKInterface,
    bucket_labels,
    bucketise,
    equi_depth_edges,
    equi_width_edges,
    promote_measure_to_attribute,
)
from repro.datasets import yahoo_auto


class TestEdges:
    def test_equi_width(self):
        edges = equi_width_edges([0.0, 10.0], buckets=5)
        assert np.allclose(edges, [2, 4, 6, 8])

    def test_equi_width_constant_column(self):
        edges = equi_width_edges([5.0, 5.0, 5.0], buckets=4)
        assert len(edges) == 1

    def test_equi_depth_balances_population(self):
        values = np.concatenate([np.zeros(90), np.linspace(1, 100, 10)])
        edges = equi_depth_edges(values, buckets=4)
        codes = bucketise(values, edges)
        # The huge zero-mass collapses cut points: still a valid bucketing
        # (all indices within range, at least two distinct buckets).
        assert codes.max() <= len(edges)
        assert len(set(codes)) >= 2

    def test_equi_depth_uniform_data(self):
        values = np.arange(100, dtype=float)
        edges = equi_depth_edges(values, buckets=4)
        codes = bucketise(values, edges)
        counts = np.bincount(codes)
        assert counts.size == 4
        assert counts.max() - counts.min() <= 2

    def test_validation(self):
        with pytest.raises(SchemaError):
            equi_width_edges([1.0], buckets=1)
        with pytest.raises(SchemaError):
            equi_depth_edges([], buckets=3)


class TestBucketise:
    def test_boundaries(self):
        edges = [10.0, 20.0]
        assert list(bucketise([5, 10, 15, 20, 25], edges)) == [0, 1, 1, 2, 2]

    def test_labels(self):
        labels = bucket_labels([10.0, 20.0], unit="k")
        assert labels == ("< 10k", "10k - 20k", ">= 20k")

    def test_labels_empty_edges(self):
        assert bucket_labels([]) == ("all",)


class TestPromoteMeasure:
    @pytest.fixture(scope="class")
    def table(self):
        return yahoo_auto(m=1_000, seed=33)

    def test_new_attribute_appended(self, table):
        promoted = promote_measure_to_attribute(table, "PRICE", buckets=8)
        assert len(promoted.schema) == len(table.schema) + 1
        new_attr = promoted.schema.attribute("PRICE_RANGE")
        assert 2 <= new_attr.domain_size <= 8
        assert promoted.num_tuples == table.num_tuples

    def test_measure_kept_by_default(self, table):
        promoted = promote_measure_to_attribute(table, "PRICE", buckets=4)
        assert "PRICE" in promoted.schema.measure_names

    def test_measure_dropped_on_request(self, table):
        promoted = promote_measure_to_attribute(
            table, "PRICE", buckets=4, keep_measure=False
        )
        assert "PRICE" not in promoted.schema.measure_names

    def test_range_queries_work_through_interface(self, table):
        promoted = promote_measure_to_attribute(table, "PRICE", buckets=4)
        attr_idx = promoted.schema.index_of("PRICE_RANGE")
        client = HiddenDBClient(TopKInterface(promoted, k=50))
        total = 0
        for value in range(promoted.schema[attr_idx].domain_size):
            total += promoted.count(ConjunctiveQuery().extended(attr_idx, value))
        assert total == promoted.num_tuples

    def test_codes_respect_price_order(self, table):
        promoted = promote_measure_to_attribute(table, "PRICE", buckets=6)
        attr_idx = promoted.schema.index_of("PRICE_RANGE")
        codes = np.asarray(promoted.data[:, attr_idx])
        prices = np.asarray(promoted.measure("PRICE"))
        # Mean price must increase with the bucket index.
        means = [prices[codes == c].mean() for c in sorted(set(codes))]
        assert all(a < b for a, b in zip(means, means[1:]))

    def test_estimation_on_promoted_attribute(self, table):
        # End-to-end: estimate the count of the cheapest price range
        # through the form using the new searchable attribute.
        from repro.core import HDUnbiasedSize

        promoted = promote_measure_to_attribute(table, "PRICE", buckets=4)
        attr_idx = promoted.schema.index_of("PRICE_RANGE")
        truth = promoted.count(ConjunctiveQuery().extended(attr_idx, 0))
        client = HiddenDBClient(TopKInterface(promoted, k=50))
        estimator = HDUnbiasedSize(
            client, r=3, dub=32, condition={"PRICE_RANGE": 0}, seed=34
        )
        result = estimator.run(rounds=30)
        assert result.mean == pytest.approx(truth, rel=0.45)

    def test_unknown_method(self, table):
        with pytest.raises(SchemaError):
            promote_measure_to_attribute(table, "PRICE", 4, method="magic")
