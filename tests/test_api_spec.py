"""Unit tests for the declarative spec layer (`repro.api.spec`)."""

import dataclasses
import json

import pytest

from repro.api import (
    AggregateSpec,
    ChurnSpec,
    DatasetSpec,
    EstimationSpec,
    FederationSpec,
    MethodSpec,
    RegimeSpec,
    TargetSpec,
)


def dataset_target(**kwargs):
    return TargetSpec(dataset=DatasetSpec(name="iid", m=500, seed=3), **kwargs)


class TestModeResolution:
    def test_static(self):
        spec = EstimationSpec(target=dataset_target(), regime=RegimeSpec(rounds=5))
        assert spec.mode == "static"

    def test_budgeted_by_budget(self):
        spec = EstimationSpec(
            target=dataset_target(), regime=RegimeSpec(query_budget=100)
        )
        assert spec.mode == "budgeted"

    def test_budgeted_by_precision(self):
        spec = EstimationSpec(
            target=dataset_target(), regime=RegimeSpec(target_precision=0.1)
        )
        assert spec.mode == "budgeted"

    def test_tracking(self):
        spec = EstimationSpec(target=dataset_target(churn=ChurnSpec(epochs=3)))
        assert spec.mode == "tracking"

    def test_federated(self):
        spec = EstimationSpec(
            target=TargetSpec(federation=FederationSpec(sources=2)),
            regime=RegimeSpec(query_budget=400),
        )
        assert spec.mode == "federated"


class TestEagerValidation:
    def test_target_needs_exactly_one_of_dataset_federation(self):
        with pytest.raises(ValueError, match="exactly one"):
            TargetSpec()
        with pytest.raises(ValueError, match="exactly one"):
            TargetSpec(dataset=DatasetSpec(), federation=FederationSpec())

    def test_unknown_dataset_and_backend(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            DatasetSpec(name="postgres")
        with pytest.raises(ValueError, match="unknown backend"):
            dataset_target(backend="gpu")

    def test_churn_needs_dataset(self):
        with pytest.raises(ValueError, match="dataset targets only"):
            TargetSpec(
                federation=FederationSpec(sources=2), churn=ChurnSpec()
            )

    def test_aggregate_measure_rules(self):
        with pytest.raises(ValueError, match="needs a measure"):
            AggregateSpec(kind="sum")
        with pytest.raises(ValueError, match="takes no measure"):
            AggregateSpec(kind="size", measure="PRICE")
        with pytest.raises(ValueError, match="unknown aggregate"):
            AggregateSpec(kind="median")

    def test_precision_refuses_workers(self):
        with pytest.raises(ValueError, match="sequential"):
            RegimeSpec(target_precision=0.1, workers=2)

    def test_regime_bounds(self):
        with pytest.raises(ValueError):
            RegimeSpec(rounds=0)
        with pytest.raises(ValueError):
            RegimeSpec(query_budget=0)
        with pytest.raises(ValueError):
            RegimeSpec(workers=0)

    def test_federated_needs_budget(self):
        with pytest.raises(ValueError, match="query_budget"):
            EstimationSpec(
                target=TargetSpec(federation=FederationSpec(sources=2))
            )

    def test_federated_refuses_rounds_and_avg(self):
        fed = TargetSpec(federation=FederationSpec(sources=2))
        with pytest.raises(ValueError, match="budget-driven"):
            EstimationSpec(
                target=fed, regime=RegimeSpec(rounds=5, query_budget=400)
            )
        with pytest.raises(ValueError, match="AVG"):
            EstimationSpec(
                target=fed,
                aggregate=AggregateSpec(kind="avg", measure="PRICE"),
                regime=RegimeSpec(query_budget=400),
            )

    def test_federated_refuses_condition_and_walk_knobs(self):
        fed = TargetSpec(federation=FederationSpec(sources=2))
        with pytest.raises(ValueError, match="condition"):
            EstimationSpec(
                target=fed,
                aggregate=AggregateSpec(kind="count", condition={"A00": 1}),
                regime=RegimeSpec(query_budget=400),
            )
        # r/dub/weight_adjustment are per-source in a federation; a spec
        # setting them would be silently ignored, so it is refused.
        for knob in ({"r": 8}, {"dub": 64}, {"weight_adjustment": False}):
            with pytest.raises(ValueError, match="per-source"):
                EstimationSpec(
                    target=fed,
                    regime=RegimeSpec(query_budget=400),
                    method=MethodSpec(**knob),
                )

    def test_tracking_forwards_walk_knobs(self):
        from repro.api.compiler import tracker_kwargs

        spec = EstimationSpec(
            target=dataset_target(churn=ChurnSpec(epochs=2)),
            method=MethodSpec(r=3, dub=8, weight_adjustment=True),
        )
        _, build_kwargs = tracker_kwargs(spec)
        assert build_kwargs["r"] == 3
        assert build_kwargs["dub"] == 8
        assert build_kwargs["weight_adjustment"] is True
        # Unset knobs stay unset so track()'s plain-walk defaults apply.
        _, plain = tracker_kwargs(
            EstimationSpec(target=dataset_target(churn=ChurnSpec(epochs=2)))
        )
        assert "r" not in plain and "dub" not in plain

    def test_unknown_policies(self):
        with pytest.raises(ValueError, match="unknown allocation policy"):
            EstimationSpec(
                target=TargetSpec(federation=FederationSpec(sources=2)),
                regime=RegimeSpec(query_budget=400),
                method=MethodSpec(policy="magic"),
            )
        with pytest.raises(ValueError, match="unknown tracking policy"):
            EstimationSpec(
                target=dataset_target(churn=ChurnSpec(epochs=2)),
                method=MethodSpec(policy="magic"),
            )

    def test_tracking_refuses_global_budget(self):
        with pytest.raises(ValueError, match="per-epoch"):
            EstimationSpec(
                target=dataset_target(churn=ChurnSpec(epochs=2)),
                regime=RegimeSpec(query_budget=100),
            )

    def test_restart_refuses_reissue_knobs(self):
        with pytest.raises(ValueError, match="reissue"):
            EstimationSpec(
                target=dataset_target(churn=ChurnSpec(epochs=2)),
                method=MethodSpec(policy="restart", reissue_per_epoch=3),
            )

    def test_mode_specific_knobs_rejected_elsewhere(self):
        with pytest.raises(ValueError, match="pilot_rounds"):
            EstimationSpec(
                target=dataset_target(), method=MethodSpec(pilot_rounds=3)
            )
        with pytest.raises(ValueError, match="tracking runs only"):
            EstimationSpec(
                target=dataset_target(), method=MethodSpec(reissue_per_epoch=3)
            )
        with pytest.raises(ValueError, match="no policy"):
            EstimationSpec(
                target=dataset_target(), method=MethodSpec(policy="reissue")
            )


class TestSerialization:
    def spec(self):
        return EstimationSpec(
            target=dataset_target(k=20, churn=ChurnSpec(epochs=3, rate=0.1)),
            aggregate=AggregateSpec(kind="count", condition={"A00": 1}),
            regime=RegimeSpec(rounds=8, seed=2, workers=2),
            method=MethodSpec(policy="reissue", reissue_per_epoch=3),
        )

    def test_round_trip_equality(self):
        spec = self.spec()
        assert EstimationSpec.from_json(spec.to_json()) == spec

    def test_round_trip_is_byte_identical(self):
        spec = self.spec()
        once = spec.to_json()
        assert EstimationSpec.from_json(once).to_json() == once

    def test_canonical_json_is_sorted_and_versioned(self):
        payload = json.loads(self.spec().to_json())
        assert payload["schema_version"] == 1
        assert list(payload) == sorted(payload)

    def test_condition_is_copied_not_aliased(self):
        condition = {"A00": 1}
        spec = EstimationSpec(
            target=dataset_target(),
            aggregate=AggregateSpec(kind="count", condition=condition),
        )
        condition["A01"] = 0
        assert spec.aggregate.condition == {"A00": 1}

    def test_from_dict_rejects_unknown_keys(self):
        payload = self.spec().to_dict()
        payload["extra"] = 1
        with pytest.raises(ValueError, match="unknown spec section"):
            EstimationSpec.from_dict(payload)
        payload = self.spec().to_dict()
        payload["regime"]["turbo"] = True
        with pytest.raises(ValueError, match="turbo"):
            EstimationSpec.from_dict(payload)

    def test_from_dict_rejects_wrong_version(self):
        payload = self.spec().to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            EstimationSpec.from_dict(payload)

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            EstimationSpec.from_json("{nope")
        with pytest.raises(ValueError, match="missing 'target'"):
            EstimationSpec.from_json("{}")

    def test_null_sections_are_clean(self):
        # An explicit null target is a clean error, not an AttributeError.
        with pytest.raises(ValueError, match="missing 'target'"):
            EstimationSpec.from_json('{"schema_version": 1, "target": null}')
        # Null optional sections fall back to their defaults.
        payload = self.spec().to_dict()
        payload["method"] = None
        payload["aggregate"] = None
        payload["regime"] = None
        payload["target"]["churn"] = None
        spec = EstimationSpec.from_dict(payload)
        assert spec == EstimationSpec(target=dataset_target(k=20))

    def test_with_seed_replaces_only_the_session_seed(self):
        spec = self.spec()
        reseeded = spec.with_seed(99)
        assert reseeded.regime.seed == 99
        assert reseeded.target == spec.target
        assert dataclasses.replace(
            reseeded, regime=dataclasses.replace(reseeded.regime, seed=2)
        ) == spec
