"""Budget ledger unit tests and budget-accounting edge cases.

Covers the `QueryBudget` lease/settle/cancel lifecycle plus the session
behaviours the ISSUE calls out: last-round overshoot attribution, lease
settlement under workers>1 matching the sequential engine totals, the
stall guard for budget-only caching sessions, and `run_until` hitting
budget / precision / round-cap in every order.
"""

import pytest

from repro.core import HDUnbiasedSize, ParallelSession, QueryBudget
from repro.core.budget import BudgetExhausted, as_budget
from repro.datasets import boolean_table
from repro.hidden_db import HiddenDBClient, QueryCounter, TopKInterface


@pytest.fixture(scope="module")
def table():
    return boolean_table(1_000, [0.5] * 12, seed=71)


def client_for(table, k=10, limit=None):
    return HiddenDBClient(
        TopKInterface(table, k, counter=QueryCounter(limit=limit))
    )


def estimator_for(table, seed, **kwargs):
    kwargs.setdefault("r", 3)
    kwargs.setdefault("dub", 16)
    return HDUnbiasedSize(client_for(table), seed=seed, **kwargs)


class TestLedger:
    def test_lifecycle(self):
        budget = QueryBudget(100)
        first = budget.lease()
        budget.settle(first, 60)
        assert budget.spent == 60 and not budget.exhausted
        assert budget.remaining == 40
        second = budget.lease()
        budget.settle(second, 55)  # atomic round: allowed to overshoot
        assert budget.exhausted
        assert budget.overshoot == 15
        assert budget.rounds_settled == 2

    def test_refuses_lease_once_exhausted(self):
        budget = QueryBudget(10)
        budget.settle(budget.lease(), 10)
        with pytest.raises(BudgetExhausted):
            budget.lease()

    def test_out_of_order_settlement_refused(self):
        budget = QueryBudget(100)
        first, second = budget.lease(), budget.lease()
        with pytest.raises(ValueError, match="out-of-order"):
            budget.settle(second, 5)
        budget.settle(first, 5)
        budget.settle(second, 5)
        assert budget.spent == 10

    def test_cancel_skips_the_settle_cursor(self):
        budget = QueryBudget(100)
        first, second, third = (budget.lease() for _ in range(3))
        budget.settle(first, 5)
        budget.cancel(second)
        budget.settle(third, 7)  # cursor hops the cancelled lease
        assert budget.spent == 12
        assert budget.ledger()["cancelled"] == 1
        assert budget.outstanding == 0

    def test_double_settlement_and_settled_cancel_refused(self):
        budget = QueryBudget(100)
        lease = budget.lease()
        budget.settle(lease, 5)
        with pytest.raises(ValueError, match="already settled"):
            budget.settle(lease, 5)
        with pytest.raises(ValueError, match="already settled"):
            budget.cancel(lease)

    def test_unlimited_ledger_tracks_but_never_refuses(self):
        budget = QueryBudget(None)
        for cost in (100, 200, 300):
            budget.settle(budget.lease(), cost)
        assert budget.spent == 600
        assert not budget.exhausted
        assert budget.remaining is None and budget.overshoot == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            QueryBudget(-1)
        budget = QueryBudget(10)
        with pytest.raises(ValueError, match="non-negative"):
            budget.settle(budget.lease(), -3)

    def test_float_costs_supported(self):
        budget = QueryBudget(10.0)
        budget.settle(budget.lease(), 2.5)
        budget.settle(budget.lease(), 8.0)
        assert budget.spent == pytest.approx(10.5)
        assert budget.overshoot == pytest.approx(0.5)

    def test_forced_lease_on_exhausted_ledger(self):
        budget = QueryBudget(10)
        budget.settle(budget.lease(), 12)
        assert budget.exhausted
        forced = budget.lease(force=True)  # scheduler minimum-rounds hatch
        budget.settle(forced, 4)
        assert budget.spent == 16 and budget.overshoot == 6

    def test_as_budget_passthrough_and_coercion(self):
        ledger = QueryBudget(5)
        assert as_budget(ledger) is ledger
        assert as_budget(5).total == 5
        assert as_budget(None).total is None


class TestBudgetAccounting:
    """The ISSUE's satellite edge cases, end to end."""

    def test_last_round_overshoot_attribution(self, table):
        budget = QueryBudget(100)
        result = estimator_for(table, seed=3).run(query_budget=budget)
        assert result.stop_reason == "budget"
        assert budget.spent == result.total_cost
        # Spend through the second-to-last round was under the total; the
        # whole excess belongs to the final atomic round.
        last_round_cost = result.raw_rounds[-1].cost
        assert budget.spent - last_round_cost < 100
        assert budget.overshoot == max(0, result.total_cost - 100)

    def test_parallel_settlement_equals_sequential_totals(self, table):
        """Lease settlement under workers>1 == the workers=1 engine run."""
        def session(workers):
            return ParallelSession(
                lambda seed: estimator_for(table, seed),
                workers=workers,
                seed=99,
            )

        budgets = {w: QueryBudget(220) for w in (1, 2, 4)}
        results = {w: session(w).run_budgeted(budgets[w]) for w in (1, 2, 4)}
        for workers in (2, 4):
            assert results[workers].estimates == results[1].estimates
            assert results[workers].total_cost == results[1].total_cost
            assert budgets[workers].spent == budgets[1].spent
            assert (
                budgets[workers].rounds_settled == budgets[1].rounds_settled
            )
            assert budgets[workers].overshoot == budgets[1].overshoot

    def test_budget_only_caching_stall_surfaces(self, table):
        # One shared caching client: once every walked subtree is cached,
        # rounds cost nothing and can never spend the rest of the budget.
        estimator = estimator_for(table, seed=3, r=2)
        result = estimator.run(query_budget=100_000, stall_rounds=25)
        assert result.stop_reason == "stalled"
        assert result.stalled
        assert result.total_cost < 100_000
        # The tail of the session really was free rounds.
        assert all(r.cost == 0 for r in result.raw_rounds[-25:])

    def test_stall_guard_in_run_until(self, table):
        estimator = estimator_for(table, seed=3, r=2)
        result = estimator.run_until(
            1e-12, query_budget=100_000, stall_rounds=25, max_rounds=100_000
        )
        assert result.stop_reason == "stalled"

    def test_rounds_cap_beats_stall_guard(self, table):
        # An explicit round count never stalls (matches the pre-ledger
        # contract: the stall guard only applies to budget-only sessions).
        estimator = estimator_for(table, seed=3, r=2)
        result = estimator.run(rounds=120, stall_rounds=25)
        assert result.rounds == 120
        assert result.stop_reason == "rounds"


class TestRunUntilStopOrders:
    """run_until must report whichever bound fires first, in every order."""

    def test_precision_first(self, table):
        result = estimator_for(table, seed=5).run_until(
            0.25, query_budget=10**9, max_rounds=10_000
        )
        assert result.stop_reason == "precision"
        assert 1.96 * result.std_error <= 0.25 * abs(result.mean) * 1.0001

    def test_budget_first(self, table):
        result = estimator_for(table, seed=5).run_until(
            1e-12, query_budget=60, max_rounds=10_000
        )
        assert result.stop_reason == "budget"
        assert result.total_cost >= 60

    def test_max_rounds_first(self, table):
        result = estimator_for(table, seed=5).run_until(
            1e-12, query_budget=10**9, max_rounds=6
        )
        assert result.stop_reason == "max_rounds"
        assert result.rounds == 6

    def test_hard_limit_first(self, table):
        estimator = HDUnbiasedSize(
            client_for(table, limit=60), r=3, dub=16, seed=5
        )
        result = estimator.run_until(1e-12, max_rounds=10_000)
        assert result.stop_reason == "hard_limit"
        assert result.total_cost <= 60

    def test_zero_budget_allows_no_rounds(self, table):
        with pytest.raises(ValueError, match="no rounds"):
            estimator_for(table, seed=5).run_until(0.1, query_budget=0)
