"""The ``python -m repro`` module entry point and ``--version``."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import __version__
from repro.cli import main

SRC = str(Path(__file__).resolve().parent.parent / "src")


def run_module(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )


class TestVersionFlag:
    def test_version_exits_zero_and_prints_the_package_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"hiddendb-repro {__version__}"

    def test_version_wins_over_missing_subcommand(self, capsys):
        # --version short-circuits the otherwise-required subcommand.
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestModuleEntryPoint:
    def test_python_dash_m_version(self):
        proc = run_module("--version")
        assert proc.returncode == 0
        assert proc.stdout.strip() == f"hiddendb-repro {__version__}"

    def test_python_dash_m_list(self):
        proc = run_module("list")
        assert proc.returncode == 0
        assert "fig06" in proc.stdout

    def test_python_dash_m_without_command_fails_cleanly(self):
        proc = run_module()
        assert proc.returncode == 2
        assert "command" in proc.stderr
