"""The Estimation facade: compile-and-run equivalence for all regimes.

The front-door contract: for a fixed seed, ``Estimation(spec).run()``
reproduces the exact estimates and costs of the equivalent hand-built
estimator stack, and a spec serialized through JSON produces a report
that is byte-identical to the original's.
"""

import json
import math

import pytest

from repro.api import (
    AggregateReport,
    AggregateSpec,
    ChurnSpec,
    DatasetSpec,
    Estimation,
    EstimationSpec,
    FederationSpec,
    MethodSpec,
    RegimeSpec,
    TargetSpec,
    run_spec,
)
from repro.core.dynamic import track
from repro.core.estimators import HDUnbiasedAgg, HDUnbiasedSize
from repro.datasets import bool_iid
from repro.datasets.federation import heterogeneous_federation
from repro.federation import FederatedSizeEstimator
from repro.hidden_db.counters import HiddenDBClient
from repro.hidden_db.interface import TopKInterface


def iid_target(k=20, **kwargs):
    return TargetSpec(
        dataset=DatasetSpec(name="iid", m=500, seed=3), k=k, **kwargs
    )


def hand_built_client(seed=3, k=20, m=500):
    table = bool_iid(m=m, seed=seed).with_backend("scan")
    return HiddenDBClient(TopKInterface(table, k)), table


class TestStaticEquivalence:
    def test_matches_hand_built_stack(self):
        spec = EstimationSpec(
            target=iid_target(), regime=RegimeSpec(rounds=5, seed=3)
        )
        report = Estimation(spec).run()
        client, _ = hand_built_client()
        result = HDUnbiasedSize(client, r=4, dub=32, seed=3).run(rounds=5)
        assert report.estimate == result.mean
        assert report.total_queries == result.total_cost
        assert report.rounds == result.rounds == 5
        assert report.stop_reason == "rounds"
        assert report.trajectory == list(
            zip(result.trajectory.xs, result.trajectory.values)
        )

    def test_default_rounds_is_twenty(self):
        spec = EstimationSpec(target=iid_target(), regime=RegimeSpec(seed=3))
        assert Estimation(spec).run().rounds == 20

    def test_sum_aggregate(self):
        spec = EstimationSpec(
            target=TargetSpec(
                dataset=DatasetSpec(name="yahoo", m=400, seed=5), k=30
            ),
            aggregate=AggregateSpec(kind="sum", measure="PRICE"),
            regime=RegimeSpec(rounds=4, seed=5),
        )
        report = Estimation(spec).run()
        from repro.datasets import yahoo_auto

        table = yahoo_auto(m=400, seed=5).with_backend("scan")
        estimator = HDUnbiasedAgg(
            HiddenDBClient(TopKInterface(table, 30)),
            aggregate="sum", measure="PRICE", r=4, dub=32, seed=5,
        )
        assert report.estimate == estimator.run(rounds=4).mean


class TestBudgetedEquivalence:
    def test_budget_with_workers(self):
        spec = EstimationSpec(
            target=iid_target(),
            regime=RegimeSpec(query_budget=150, seed=3, workers=2),
        )
        report = Estimation(spec).run()
        client, _ = hand_built_client()
        result = HDUnbiasedSize(client, r=4, dub=32, seed=3).run(
            query_budget=150, workers=2
        )
        assert report.estimate == result.mean
        assert report.total_queries == result.total_cost
        assert report.stop_reason == "budget"

    def test_precision(self):
        spec = EstimationSpec(
            target=iid_target(),
            regime=RegimeSpec(target_precision=0.25, seed=3),
        )
        report = Estimation(spec).run()
        client, _ = hand_built_client()
        result = HDUnbiasedSize(client, r=4, dub=32, seed=3).run_until(0.25)
        assert report.estimate == result.mean
        assert report.stop_reason == "precision"


class TestTrackingEquivalence:
    def test_matches_track(self):
        spec = EstimationSpec(
            target=iid_target(churn=ChurnSpec(epochs=3, rate=0.1), k=25),
            regime=RegimeSpec(rounds=8, seed=2),
            method=MethodSpec(policy="reissue", reissue_per_epoch=3),
        )
        report = Estimation(spec).run()
        result = track(
            bool_iid(m=500, seed=3),
            epochs=3, churn=0.1, policy="reissue", k=25, rounds=8,
            reissue_per_epoch=3, seed=2, churn_seed=0, backend="scan",
        )
        assert report.per_epoch == result.to_dict()["epochs"]
        assert report.total_queries == result.total_cost
        assert report.estimate == result.epochs[-1].estimate
        assert report.stop_reason == "epochs"


class TestFederatedEquivalence:
    def spec(self):
        return EstimationSpec(
            target=TargetSpec(
                federation=FederationSpec(sources=2, base_m=250, seed=7),
                k=16,
            ),
            regime=RegimeSpec(query_budget=400, seed=7),
            method=MethodSpec(policy="uniform", pilot_rounds=2),
        )

    def test_matches_hand_built_stack(self):
        report = Estimation(self.spec()).run()
        target = heterogeneous_federation(
            num_sources=2, base_m=250, k=16, overlap=0.0,
            backend="scan", seed=7,
        )
        result = FederatedSizeEstimator(
            target, policy="uniform", pilot_rounds=2, seed=7
        ).run(query_budget=400)
        assert report.estimate == result.total
        assert report.cost_units == result.total_cost_units
        assert report.allocations == result.allocations
        assert report.per_source == [s.to_dict() for s in result.per_source]

    def test_ground_truth_reads_the_compiled_target(self):
        estimation = Estimation(self.spec())
        estimation.run()
        assert estimation.ground_truth() == (
            estimation.federation.true_total_size()
        )


class TestSerializedReproduction:
    """spec -> JSON -> spec -> identical seeded AggregateReport."""

    @pytest.mark.parametrize("spec", [
        EstimationSpec(target=iid_target(), regime=RegimeSpec(rounds=4, seed=3)),
        EstimationSpec(
            target=iid_target(),
            regime=RegimeSpec(query_budget=120, seed=3, workers=2),
        ),
        EstimationSpec(
            target=iid_target(churn=ChurnSpec(epochs=2, rate=0.1), k=25),
            regime=RegimeSpec(rounds=6, seed=2),
            method=MethodSpec(reissue_per_epoch=2),
        ),
        EstimationSpec(
            target=TargetSpec(
                federation=FederationSpec(sources=2, base_m=250, seed=7),
                k=16,
            ),
            regime=RegimeSpec(query_budget=400, seed=7),
            method=MethodSpec(policy="uniform", pilot_rounds=2),
        ),
    ], ids=["static", "budgeted", "tracking", "federated"])
    def test_report_identical_through_json(self, spec):
        direct = Estimation(spec).run()
        rebuilt = Estimation(EstimationSpec.from_json(spec.to_json())).run()
        assert direct.to_json() == rebuilt.to_json()

    def test_report_json_is_strict_rfc8259(self):
        # Tracking reports have no session-level standard error; the NaN
        # must serialize as null so jq/JSON.parse-style consumers can
        # read a shipped report.
        spec = EstimationSpec(
            target=iid_target(churn=ChurnSpec(epochs=2, rate=0.1), k=25),
            regime=RegimeSpec(rounds=6, seed=2),
        )
        report = Estimation(spec).run()
        text = report.to_json()
        assert "NaN" not in text

        def no_constants(name):
            raise AssertionError(f"non-strict JSON constant {name}")

        json.loads(text, parse_constant=no_constants)
        parsed = AggregateReport.from_json(text)
        assert math.isnan(parsed.std_error)
        assert parsed.to_json() == text

    def test_malformed_report_payloads_raise_value_error(self):
        base = {
            "mode": "static", "estimate": 1.0, "std_error": 1.0,
            "ci95": [0.0, 2.0], "rounds": 1, "total_queries": 1,
            "cost_units": 1.0, "stop_reason": "rounds",
        }
        bad_ci = dict(base, ci95=None)
        with pytest.raises(ValueError, match="ci95"):
            AggregateReport.from_dict(bad_ci)
        bad_traj = dict(base, trajectory=[[1.0]])
        with pytest.raises(ValueError, match="trajectory"):
            AggregateReport.from_dict(bad_traj)
        # A null trajectory reads back as empty, like an omitted one.
        assert AggregateReport.from_dict(dict(base, trajectory=None)).trajectory == []

    def test_report_round_trips_byte_identically(self):
        spec = EstimationSpec(
            target=iid_target(), regime=RegimeSpec(rounds=4, seed=3)
        )
        report = Estimation(spec).run()
        once = report.to_json()
        assert AggregateReport.from_json(once).to_json() == once
        assert AggregateReport.from_json(once).spec == spec


class TestInjection:
    def test_custom_dataset_requires_injected_table(self):
        spec = EstimationSpec(
            target=TargetSpec(dataset=DatasetSpec(name="custom"), k=20),
            regime=RegimeSpec(rounds=3, seed=3),
        )
        with pytest.raises(ValueError, match="custom"):
            Estimation(spec).run()
        table = bool_iid(m=300, seed=9)
        report = Estimation(spec, table=table).run()
        assert report.rounds == 3
        assert report.estimate > 0

    def test_run_spec_convenience(self):
        spec = EstimationSpec(
            target=iid_target(), regime=RegimeSpec(rounds=3, seed=3)
        )
        assert run_spec(spec).to_json() == Estimation(spec).run().to_json()

    def test_estimation_rejects_non_spec(self):
        with pytest.raises(TypeError, match="EstimationSpec"):
            Estimation({"rounds": 5})
