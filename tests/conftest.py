"""Shared fixtures for the test suite."""

import pytest

from repro.datasets import boolean_table, running_example, yahoo_auto
from repro.hidden_db import HiddenDBClient, TopKInterface


@pytest.fixture()
def example_table():
    """The paper's Table 1 (6 tuples, 4 Boolean + 1 categorical attribute)."""
    return running_example()


@pytest.fixture()
def example_client(example_table):
    """Client over Table 1 with k = 1 (the paper's Figure 1 setting)."""
    return HiddenDBClient(TopKInterface(example_table, k=1))


@pytest.fixture(scope="session")
def small_bool_table():
    """A 300-tuple skewed Boolean table reused by statistical tests."""
    return boolean_table(
        300, [0.5, 0.5, 0.1, 0.2, 0.3, 0.15, 0.4, 0.25, 0.1, 0.35], seed=7
    )


@pytest.fixture(scope="session")
def small_yahoo_table():
    """A 1,500-row synthetic Yahoo! Auto table."""
    return yahoo_auto(m=1_500, seed=11)


def make_client(table, k, cache=True, limit=None):
    """Fresh interface + client over *table*."""
    from repro.hidden_db import QueryCounter

    counter = QueryCounter(limit=limit)
    return HiddenDBClient(TopKInterface(table, k, counter=counter), cache=cache)
