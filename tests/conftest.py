"""Shared fixtures for the test suite.

The expensive inputs — generated tables — are **session-scoped**: they
are read-only under the paper's model (estimators only query them), so
every suite can share one instance instead of regenerating its own.
Suites that *mutate* tables (churn/versioning tests) must keep building
private copies.

The ``slow`` marker gates the exhaustive statistical grid (see
``test_statistical_properties.py``): tier-1 runs a fast subset by
default, ``--runslow`` (CI's opt-in battery job) runs everything.
"""

import pytest

from repro.datasets import boolean_table, bool_iid, running_example, yahoo_auto
from repro.hidden_db import HiddenDBClient, TopKInterface


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run the exhaustive (slow-marked) statistical test grid",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: exhaustive statistical grid; deselected unless --runslow",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow grid: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture()
def example_table():
    """The paper's Table 1 (6 tuples, 4 Boolean + 1 categorical attribute)."""
    return running_example()


@pytest.fixture()
def example_client(example_table):
    """Client over Table 1 with k = 1 (the paper's Figure 1 setting)."""
    return HiddenDBClient(TopKInterface(example_table, k=1))


@pytest.fixture(scope="session")
def small_bool_table():
    """A 300-tuple skewed Boolean table reused by statistical tests."""
    return boolean_table(
        300, [0.5, 0.5, 0.1, 0.2, 0.3, 0.15, 0.4, 0.25, 0.1, 0.35], seed=7
    )


@pytest.fixture(scope="session")
def small_yahoo_table():
    """A 1,500-row synthetic Yahoo! Auto table."""
    return yahoo_auto(m=1_500, seed=11)


@pytest.fixture(scope="session")
def small_iid_table():
    """A 400-tuple iid Boolean table (the service suites' shared target)."""
    return bool_iid(m=400, n=10, seed=3)


@pytest.fixture(scope="session")
def stratified_yahoo_table():
    """A 600-row Yahoo! Auto table for the online-form suites."""
    return yahoo_auto(m=600, seed=3)


@pytest.fixture(scope="session")
def crawl_bool_table():
    """A 60-tuple Boolean table the crawler suites enumerate."""
    return boolean_table(60, [0.5] * 8, seed=3)


def make_client(table, k, cache=True, limit=None):
    """Fresh interface + client over *table*."""
    from repro.hidden_db import QueryCounter

    counter = QueryCounter(limit=limit)
    return HiddenDBClient(TopKInterface(table, k, counter=counter), cache=cache)
