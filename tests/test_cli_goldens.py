"""Schema-stability goldens for the CLI's ``--json`` outputs.

The golden files under ``tests/goldens/`` were captured from the
pre-``repro.api`` CLI (``track``/``federate``) and from the first
``estimate --json`` release; these tests re-run the exact commands and
compare *bytes*, so neither the payload schema nor the seeded values can
drift silently.  If an intentional schema change lands, regenerate the
goldens with the commands embedded in each file name/test and say so in
the commit.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main

GOLDEN_DIR = Path(__file__).parent / "goldens"

GOLDEN_COMMANDS = {
    "cli_estimate.json": [
        "estimate", "--dataset", "iid", "--m", "500", "--k", "20",
        "--rounds", "4", "--seed", "3", "--json",
    ],
    "cli_track.json": [
        "track", "--dataset", "iid", "--m", "500", "--k", "25",
        "--epochs", "3", "--churn", "0.1", "--rounds", "8",
        "--reissue", "3", "--seed", "2", "--json",
    ],
    "cli_track_restart.json": [
        "track", "--dataset", "iid", "--m", "400", "--k", "25",
        "--epochs", "2", "--policy", "restart", "--rounds", "6",
        "--seed", "2", "--json",
    ],
    "cli_federate.json": [
        "federate", "--sources", "2", "--m", "250", "--k", "16",
        "--budget", "400", "--policy", "uniform", "--pilot-rounds", "2",
        "--seed", "7", "--json",
    ],
    "cli_federate_neyman.json": [
        "federate", "--sources", "3", "--m", "250", "--k", "16",
        "--budget", "600", "--policy", "neyman", "--pilot-rounds", "2",
        "--seed", "11", "--json",
    ],
}


@pytest.mark.parametrize("golden_name", sorted(GOLDEN_COMMANDS))
def test_cli_json_matches_golden_bytes(golden_name, capsys):
    argv = GOLDEN_COMMANDS[golden_name]
    assert main(argv) == 0
    out = capsys.readouterr().out
    golden = (GOLDEN_DIR / golden_name).read_text()
    assert out == golden, (
        f"{golden_name} drifted; if intentional, regenerate with: "
        f"hiddendb-repro {' '.join(argv)}"
    )


def test_goldens_are_valid_json():
    for name in GOLDEN_COMMANDS:
        payload = json.loads((GOLDEN_DIR / name).read_text())
        assert payload  # non-empty object


def test_run_spec_reproduces_estimate_golden(tmp_path, capsys):
    """A spec file through ``run-spec --json`` equals ``estimate --json``.

    The subcommands are thin translators over one front door, so the
    same request expressed either way must serialize identically.
    """
    from repro.api import (
        DatasetSpec, EstimationSpec, MethodSpec, RegimeSpec, TargetSpec,
    )

    spec = EstimationSpec(
        target=TargetSpec(
            dataset=DatasetSpec(name="iid", m=500, seed=3), k=20
        ),
        regime=RegimeSpec(rounds=4, seed=3),
        method=MethodSpec(r=4, dub=32),
    )
    spec_path = tmp_path / "request.json"
    spec_path.write_text(spec.to_json(indent=2))
    assert main(["run-spec", str(spec_path), "--json"]) == 0
    out = capsys.readouterr().out
    golden = (GOLDEN_DIR / "cli_estimate.json").read_text()
    assert out == golden
