"""The asyncio front door over a real socket: TCP line-JSON + HTTP.

Everything here runs against a :class:`BackgroundServer` on an ephemeral
loopback port — real connections, real framing, real backpressure — and
pins the server's central contract: what arrives over the wire is
byte-identical to what the in-process facade computes.
"""

import contextlib
import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.api import (
    DatasetSpec,
    Estimation,
    EstimationSpec,
    RegimeSpec,
    TargetSpec,
)
from repro.server import BackgroundServer, EstimationServer, ServerConfig
from repro.service import EstimationService


def make_spec(seed=0, rounds=4, m=400, k=24, dataset_seed=3, **regime):
    return EstimationSpec(
        target=TargetSpec(
            dataset=DatasetSpec(name="iid", m=m, seed=dataset_seed), k=k
        ),
        regime=RegimeSpec(rounds=rounds, seed=seed, **regime),
    )


@contextlib.contextmanager
def running_server(workers=2, tenant_budget=None, **config):
    service = EstimationService(
        workers=workers, default_tenant_budget=tenant_budget
    )
    server = EstimationServer(service, ServerConfig(**config))
    with BackgroundServer(server) as bg:
        yield bg


class LineClient:
    """A blocking line-JSON client (one request or event per line)."""

    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=30)
        self.fh = self.sock.makefile("rw", encoding="utf-8")

    def send(self, payload) -> None:
        self.fh.write(json.dumps(payload) + "\n")
        self.fh.flush()

    def send_raw(self, text: str) -> None:
        self.fh.write(text)
        self.fh.flush()

    def recv(self):
        line = self.fh.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    def recv_until(self, predicate):
        """Read events until one satisfies *predicate*; returns all."""
        seen = []
        while True:
            msg = self.recv()
            seen.append(msg)
            if predicate(msg):
                return seen

    def close(self) -> None:
        self.fh.close()
        self.sock.close()


@contextlib.contextmanager
def connected(bg):
    client = LineClient(bg.address)
    try:
        yield client
    finally:
        client.close()


def http_json(url, data=None, method=None):
    request = urllib.request.Request(url, data=data, method=method)
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


class TestByteIdentity:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_wire_report_equals_in_process_run(self, workers):
        """The acceptance criterion: TCP responses are byte-identical to
        ``Estimation.run`` at every worker count."""
        spec = make_spec(seed=21)
        expected = Estimation(spec).run().to_json()
        with running_server(workers=workers) as bg, connected(bg) as client:
            client.send({
                "op": "submit", "id": "w", "spec": spec.to_dict(),
                "wait": True,
            })
            response = client.recv()
        assert response["status"] == "done"
        assert (
            json.dumps(response["report"], sort_keys=True) == expected
        )

    def test_streaming_sequence_matches_facade(self):
        spec = make_spec(seed=22, rounds=5)
        stream = Estimation(spec).stream()
        expected = [snapshot.to_dict() for snapshot in stream]
        with running_server() as bg, connected(bg) as client:
            client.send({
                "op": "submit", "id": "s", "spec": spec.to_dict(),
                "stream": True,
            })
            events = client.recv_until(lambda m: m.get("event") == "done")
        ack, *rest = events
        assert ack["status"] == "queued"
        snapshots = [e for e in rest if e.get("event") == "snapshot"]
        assert [e["snapshot"] for e in snapshots] == expected
        assert [e["seq"] for e in snapshots] == list(
            range(1, len(expected) + 1)
        )
        done = rest[-1]
        assert done["status"] == "done" and done["snapshots"] == len(expected)
        assert done["report"] == stream.result.to_dict()


class TestProtocolFlow:
    def test_ack_then_done_event(self):
        with running_server() as bg, connected(bg) as client:
            client.send({
                "op": "submit", "id": "a", "spec": make_spec(seed=23).to_dict(),
            })
            ack = client.recv()
            assert ack["status"] == "queued" and ack["id"] == "a"
            done = client.recv()
            assert done["event"] == "done" and done["job"] == ack["job"]
            assert done["status"] == "done"

    def test_result_op_waits_for_the_job(self):
        with running_server() as bg, connected(bg) as client:
            client.send({
                "op": "submit", "id": "a", "spec": make_spec(seed=24).to_dict(),
            })
            ack = client.recv()
            client.send({"op": "result", "id": "r", "job": ack["job"]})
            events = client.recv_until(
                lambda m: m.get("id") == "r" and "status" in m
            )
            assert events[-1]["status"] == "done"
            assert events[-1]["report"]["estimate"] > 0

    def test_cancel_over_a_real_socket(self):
        """Acceptance: the CI smoke's cancel path, as a unit test."""
        slow = make_spec(seed=25, rounds=64, m=2000)
        with running_server(workers=1) as bg, connected(bg) as client:
            client.send({
                "op": "submit", "id": "s", "spec": slow.to_dict(),
                "stream": True,
            })
            ack = client.recv()
            client.send({"op": "cancel", "id": "c", "job": ack["job"]})
            events = client.recv_until(lambda m: m.get("event") == "done")
            cancel_ack = [e for e in events if e.get("id") == "c"]
            assert cancel_ack and cancel_ack[0]["cancel_requested"] is True
            assert events[-1]["status"] == "cancelled"

    def test_errors_keep_the_connection_usable(self):
        with running_server() as bg, connected(bg) as client:
            client.send_raw("this is not json\n")
            assert "malformed JSON" in client.recv()["error"]
            client.send([1, 2, 3])
            assert "JSON object" in client.recv()["error"]
            client.send({"op": "frobnicate", "id": 9})
            response = client.recv()
            assert response["id"] == 9
            assert "unknown request op" in response["error"]
            # The session survives all three refusals.
            client.send({
                "op": "submit", "id": "ok",
                "spec": make_spec(seed=26).to_dict(), "wait": True,
            })
            assert client.recv()["status"] == "done"

    def test_metrics_carries_the_server_block(self):
        with running_server() as bg, connected(bg) as client:
            client.send({"op": "metrics", "id": "m"})
            response = client.recv()
            block = response["metrics"]["server"]
            assert block["connections_open"] == 1
            assert block["in_flight"] == 0
            assert block["max_pending"] == 64
            assert "counters" in response["metrics"]


class TestBackpressure:
    def test_overloaded_when_pending_exceeds_cap(self):
        slow = make_spec(seed=27, rounds=64, m=2000)
        with running_server(workers=1, max_pending=1) as bg:
            with connected(bg) as client:
                client.send({
                    "op": "submit", "id": 1, "spec": slow.to_dict(),
                    "stream": True,
                })
                assert client.recv()["status"] == "queued"
                client.send({
                    "op": "submit", "id": 2, "spec": make_spec().to_dict(),
                })
                refused = client.recv()
                assert refused["status"] == "overloaded"
                assert refused["id"] == 2
                assert "max_pending=1" in refused["error"]
                # Non-submit ops still answer while overloaded.
                client.send({"op": "metrics", "id": 3})
                assert client.recv()["metrics"]["server"]["overloaded"] == 1
                client.send({"op": "cancel", "id": 4, "job": 1})

    def test_admission_refused_is_structured(self):
        with running_server(workers=1, tenant_budget=1) as bg:
            with connected(bg) as client:
                client.send({
                    "op": "submit", "id": 1,
                    "spec": make_spec(seed=28).to_dict(), "wait": True,
                })
                assert client.recv()["status"] == "done"
                client.send({
                    "op": "submit", "id": 2,
                    "spec": make_spec(seed=29).to_dict(),
                })
                refused = client.recv()
                assert refused["status"] == "admission_refused"
                assert refused["tenant"] == "default"
                assert "exhausted" in refused["error"]

    def test_idle_timeout_closes_politely(self):
        with running_server(idle_timeout=0.3) as bg, connected(bg) as client:
            client.send({"op": "metrics", "id": 1})
            assert client.recv()["status"] == "ok"
            deadline = time.time() + 10
            closing = client.recv()  # idle between requests: told, then EOF
            assert closing == {"event": "closing", "reason": "idle_timeout"}
            assert time.time() < deadline
            assert client.fh.readline() == ""  # EOF follows

    def test_silent_connections_are_reaped(self):
        with running_server(idle_timeout=0.2) as bg, connected(bg) as client:
            # Never sending a line: the server just closes (nothing to say
            # to a peer that has not spoken the protocol yet).
            assert client.fh.readline() == ""


class TestHttpBridge:
    def test_submit_poll_and_metrics(self):
        spec = make_spec(seed=30)
        expected = Estimation(spec).run().to_json()
        with running_server(http=True) as bg:
            host, port = bg.address
            base = f"http://{host}:{port}"
            body = json.dumps(spec.to_dict()).encode()
            status, ack = http_json(f"{base}/submit", data=body)
            assert status == 202 and ack["status"] == "queued"
            deadline = time.time() + 30
            while True:
                status, polled = http_json(f"{base}{ack['poll']}")
                if status == 200:
                    break
                assert status == 202 and polled["status"] == "pending"
                assert time.time() < deadline
                time.sleep(0.05)
            assert polled["status"] == "done"
            assert json.dumps(polled["report"], sort_keys=True) == expected
            status, metrics = http_json(f"{base}/metrics")
            assert status == 200
            assert metrics["metrics"]["server"]["http_requests"] >= 2
            status, cache = http_json(f"{base}/cache")
            assert status == 200 and cache["cache"]["entries"] == 1

    def test_submit_wait_blocks_for_the_report(self):
        spec = make_spec(seed=31)
        with running_server(http=True) as bg:
            host, port = bg.address
            status, response = http_json(
                f"http://{host}:{port}/submit?wait=1",
                data=json.dumps(spec.to_dict()).encode(),
            )
            assert status == 200 and response["status"] == "done"

    def test_error_statuses(self):
        with running_server(http=True) as bg:
            host, port = bg.address
            base = f"http://{host}:{port}"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                http_json(f"{base}/nope")
            assert excinfo.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                http_json(f"{base}/submit", data=b"{not json")
            assert excinfo.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                http_json(f"{base}/result/abc")
            assert excinfo.value.code == 400

    def test_http_disabled_by_default(self):
        with running_server() as bg, connected(bg) as client:
            # Without http=True a request line is just a malformed JSON
            # line — answered structurally, not as HTTP.
            client.send_raw("GET /metrics HTTP/1.1\r\n")
            assert client.recv()["status"] == "error"


class TestLifecycle:
    def test_address_resolves_ephemeral_port(self):
        with running_server() as bg:
            host, port = bg.address
            assert host == "127.0.0.1" and port > 0

    def test_shutdown_drains_in_flight_jobs(self):
        service = EstimationService(workers=1)
        server = EstimationServer(service, ServerConfig())
        bg = BackgroundServer(server)
        with bg:
            client = LineClient(bg.address)
            client.send({
                "op": "submit", "id": "d", "spec": make_spec(seed=32).to_dict(),
            })
            assert client.recv()["status"] == "queued"
        # __exit__ drained: the done event was flushed before close.
        done = client.recv()
        assert done["event"] == "done" and done["status"] == "done"
        client.close()
