"""Unit tests for the streaming statistics utilities."""

import math

import numpy as np
import pytest

from repro.utils.stats import (
    RunningStats,
    StreamingMeanSeries,
    mean_squared_error,
    relative_error,
    step_interpolate,
)


class TestRunningStats:
    def test_empty(self):
        rs = RunningStats()
        assert rs.count == 0
        assert math.isnan(rs.variance)
        assert math.isnan(rs.std_error)

    def test_single_value(self):
        rs = RunningStats()
        rs.add(5.0)
        assert rs.mean == 5.0
        assert math.isnan(rs.variance)

    def test_mean_and_variance_match_numpy(self):
        data = np.random.default_rng(0).normal(10, 3, size=257)
        rs = RunningStats()
        rs.extend(data)
        assert rs.count == 257
        assert rs.mean == pytest.approx(float(np.mean(data)))
        assert rs.variance == pytest.approx(float(np.var(data, ddof=1)))
        assert rs.population_variance == pytest.approx(float(np.var(data)))
        assert rs.std == pytest.approx(float(np.std(data, ddof=1)))

    def test_std_error(self):
        rs = RunningStats()
        rs.extend([1.0, 2.0, 3.0, 4.0])
        expected = np.std([1, 2, 3, 4], ddof=1) / 2.0
        assert rs.std_error == pytest.approx(float(expected))

    def test_confidence_interval_contains_mean(self):
        rs = RunningStats()
        rs.extend([1.0, 2.0, 3.0])
        low, high = rs.confidence_interval()
        assert low < rs.mean < high

    def test_confidence_interval_needs_two_points(self):
        rs = RunningStats()
        rs.add(1.0)
        low, high = rs.confidence_interval()
        assert math.isnan(low) and math.isnan(high)

    def test_numerical_stability_large_offset(self):
        rs = RunningStats()
        rs.extend([1e12 + x for x in (1.0, 2.0, 3.0)])
        assert rs.variance == pytest.approx(1.0, rel=1e-6)


class TestStreamingMeanSeries:
    def test_append_and_read(self):
        s = StreamingMeanSeries()
        s.append(10, 100.0)
        s.append(20, 150.0)
        assert len(s) == 2
        assert s.value_at(10) == 100.0
        assert s.value_at(15) == 100.0
        assert s.value_at(25) == 150.0

    def test_before_first_point_is_nan(self):
        s = StreamingMeanSeries()
        s.append(10, 100.0)
        assert math.isnan(s.value_at(5))

    def test_rejects_decreasing_x(self):
        s = StreamingMeanSeries()
        s.append(10, 1.0)
        with pytest.raises(ValueError):
            s.append(5, 2.0)

    def test_equal_x_allowed(self):
        s = StreamingMeanSeries()
        s.append(10, 1.0)
        s.append(10, 2.0)
        assert s.value_at(10) == 2.0  # last write wins


class TestStepInterpolate:
    def test_empty(self):
        assert math.isnan(step_interpolate([], [], 5))

    def test_exact_hits(self):
        xs, vs = [1, 3, 5], [10.0, 30.0, 50.0]
        assert step_interpolate(xs, vs, 3) == 30.0
        assert step_interpolate(xs, vs, 4.99) == 30.0
        assert step_interpolate(xs, vs, 100) == 50.0


class TestErrorMetrics:
    def test_mse(self):
        assert mean_squared_error([9.0, 11.0], 10.0) == 1.0

    def test_mse_ignores_nan(self):
        assert mean_squared_error([9.0, float("nan"), 11.0], 10.0) == 1.0

    def test_mse_all_nan(self):
        assert math.isnan(mean_squared_error([float("nan")], 10.0))

    def test_relative_error(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(90.0, 100.0) == pytest.approx(0.1)

    def test_relative_error_zero_truth(self):
        assert math.isnan(relative_error(5.0, 0.0))
