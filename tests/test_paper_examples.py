"""End-to-end checks against every worked example in the paper's text.

These tests pin our implementation to the published numbers: Figure 1's
tree classification, the q4 walk probability (Section 3.1), Figure 3's
smart-backtracking cost (Section 3.2), the Section 4.2.2 partitioning
example, and the Section 4.1.1 weight-adjustment example.
"""

import pytest

from repro.analysis import (
    smart_backtracking_expected_probes,
    uniform_walk_probabilities,
)
from repro.core.partition import segment_attributes
from repro.core.weights import WeightStore
from repro.core.drilldown import WalkStep
from repro.datasets import running_example
from repro.hidden_db import ConjunctiveQuery, HiddenDBClient, TopKInterface


ORDER = [0, 1, 2, 3, 4]  # A1..A5 as in Figure 1


@pytest.fixture()
def table():
    return running_example()


class TestFigure1Classification:
    """Figure 1 labels nodes of the A1..A4 tree (k=1)."""

    def test_q1_overflows(self, table):
        # q1 = (A1=0) holds t1..t4.
        assert table.count(ConjunctiveQuery().extended(0, 0)) == 4

    def test_q2_underflows_and_sibling_overflows(self, table):
        q2 = ConjunctiveQuery().extended(0, 1).extended(1, 0)
        assert table.count(q2) == 0
        q2_sibling = ConjunctiveQuery().extended(0, 1).extended(1, 1)
        assert table.count(q2_sibling) == 2  # t5, t6 -> overflow at k=1

    def test_q4_is_top_valid(self, table):
        # q4 = (A1=1, A2=1, A3=1, A4=1) returns exactly t6.
        q4 = ConjunctiveQuery((tuple((i, 1) for i in range(4))))
        assert table.count(q4) == 1
        parent = q4.parent()
        assert table.count(parent) == 2  # overflows at k=1

    def test_six_top_valid_nodes(self, table):
        probs = uniform_walk_probabilities(table, 1, [0, 1, 2, 3])
        # Over A1..A4 only, t5 and t6 share the prefix (1,1,1): at k=1 the
        # level-4 nodes split them -> 6 top-valid nodes, one per tuple.
        assert len(probs) == 6
        assert sum(c for _, c in probs.values()) == 6


class TestSection31WalkProbability:
    """Section 3.1: p(q4) = 1/4 via h1 = 2 Scenario-I levels."""

    def test_q4_probability_is_one_quarter(self, table):
        probs = uniform_walk_probabilities(table, 1, [0, 1, 2, 3])
        q4 = ConjunctiveQuery(tuple((i, 1) for i in range(4)))
        prob, count = probs[q4.key]
        assert prob == pytest.approx(0.25)
        assert count == 1
        # And the resulting Horvitz-Thompson estimate is |q|/p = 4,
        # matching the paper's worked number.
        assert count / prob == pytest.approx(4.0)

    def test_expected_estimate_is_m(self, table):
        # Theorem 1 checked exactly: sum over nodes of p * (|q|/p) = 6.
        probs = uniform_walk_probabilities(table, 1, [0, 1, 2, 3])
        expectation = sum(p * (c / p) for p, c in probs.values())
        assert expectation == pytest.approx(6.0)


class TestSection32SmartBacktracking:
    """Figure 3: A5 has non-empty branches q1, q3; QC = 3.6."""

    def test_branch_structure(self, table):
        counts = [
            table.count(ConjunctiveQuery().extended(4, v)) for v in range(5)
        ]
        assert counts == [5, 0, 1, 0, 0]

    def test_qc_is_3_6(self, table):
        counts = [
            table.count(ConjunctiveQuery().extended(4, v)) for v in range(5)
        ]
        pattern = [c == 0 for c in counts]
        assert smart_backtracking_expected_probes(pattern) == pytest.approx(3.6)

    def test_wu_values_from_the_text(self, table):
        # "q1 and q5 have wU = 2 and 1" — in 0-based terms branch 0 has a
        # preceding empty run of length 2 (branches 4, 3) and branch 2 has
        # run length 1 (branch 1); landing probs 3/5 and 2/5.
        probs = uniform_walk_probabilities(table, 1, [4, 0, 1, 2, 3])
        # Aggregate landing probability of the two subtrees:
        level1 = {0: 0.0, 2: 0.0}
        for key, (p, c) in probs.items():
            a5_value = dict(key)[4]
            level1[a5_value] += p
        assert level1[0] == pytest.approx(3 / 5)
        assert level1[2] == pytest.approx(2 / 5)


class TestSection42Partitioning:
    """Section 4.2.2's D_UB = 10 example."""

    def test_segments(self, table):
        segments = segment_attributes(ORDER, table.schema, dub=10)
        assert segments == [[0, 1, 2], [3, 4]]


class TestSection41WeightAdjustment:
    """Section 4.1.1: a historic drill down through q1 hitting q4 with
    p(q1) = 1/2 and p(q4) = 1/4 estimates |D_q1| = 1 * (1/2)/(1/4) = 2."""

    def test_eq6_subtree_estimate(self):
        store = WeightStore()
        root = frozenset()
        q1 = frozenset({(0, 1)})
        # Walk: root --(A1=1, p=1/2)--> q1 --(..., p=1/2)--> q4 (|q|=1).
        steps = [
            WalkStep(node_key=root, attr=0, fanout=2, value=1, probability=0.5),
            WalkStep(node_key=q1, attr=1, fanout=2, value=1, probability=0.5),
        ]
        store.record_walk(steps, terminal_mass=1.0)
        # The A1=1 branch of the root is credited 1/(1/2) = 2.
        assert store.lookup(root, 0).mass_sum[1] == pytest.approx(2.0)
        # The optimal alignment of Figure 1: branches (4/6, 2/6).
        # After this single pilot the store's estimate for branch 1 is 2.
        assert store.lookup(root, 0).estimated_masses()[1] == pytest.approx(2.0)


class TestBruteForceComparison:
    """Section 3.3.1: drill downs need at most n queries per estimate while
    BRUTE-FORCE needs ~|Dom|/m."""

    def test_drill_down_cost_bounded(self, table):
        from repro.core import BoolUnbiasedSize

        for seed in range(10):
            client = HiddenDBClient(TopKInterface(table, 1), cache=False)
            est = BoolUnbiasedSize(client, seed=seed, attribute_order=ORDER)
            round_est = est.run_once()
            # 5 attributes, fanouts (2,2,2,2,5): the walk plus probes stays
            # within ~2 queries per Boolean level + w for the categorical.
            assert round_est.cost <= 2 * 4 + 5 + 1
