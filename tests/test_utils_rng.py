"""Unit tests for the RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import child_rng, spawn_rng


def test_spawn_from_int_is_deterministic():
    a = spawn_rng(42).random(5)
    b = spawn_rng(42).random(5)
    assert np.array_equal(a, b)


def test_spawn_from_none_gives_fresh_entropy():
    a = spawn_rng(None).random(5)
    b = spawn_rng(None).random(5)
    assert not np.array_equal(a, b)


def test_spawn_passes_generator_through():
    gen = np.random.default_rng(1)
    assert spawn_rng(gen) is gen


def test_spawn_rejects_garbage():
    with pytest.raises(TypeError):
        spawn_rng("not a seed")


def test_child_rng_independent_streams():
    parent = spawn_rng(7)
    c1 = child_rng(parent)
    c2 = child_rng(parent)
    assert not np.array_equal(c1.random(5), c2.random(5))


def test_numpy_integer_seed_accepted():
    seed = np.int64(123)
    a = spawn_rng(seed).random(3)
    b = spawn_rng(123).random(3)
    assert np.array_equal(a, b)
