"""Unit tests for capture–recapture estimation."""

import math

import pytest

from repro.baselines import (
    CaptureRecaptureEstimator,
    HiddenDBSampler,
    chapman,
    lincoln_petersen,
    schnabel,
)
from repro.datasets import boolean_table
from repro.hidden_db import HiddenDBClient, QueryCounter, TopKInterface


class TestFormulas:
    def test_lincoln_petersen(self):
        assert lincoln_petersen(100, 100, 10) == pytest.approx(1000.0)

    def test_lincoln_petersen_no_overlap(self):
        assert math.isinf(lincoln_petersen(10, 10, 0))

    def test_lincoln_petersen_validation(self):
        with pytest.raises(ValueError):
            lincoln_petersen(-1, 5, 0)

    def test_chapman(self):
        assert chapman(9, 9, 4) == pytest.approx(19.0)

    def test_chapman_finite_without_overlap(self):
        assert chapman(10, 10, 0) == pytest.approx(120.0)

    def test_chapman_validation(self):
        with pytest.raises(ValueError):
            chapman(1, -2, 0)

    def test_schnabel_single_occasion(self):
        # One occasion with no marks yet: numerator 0.
        assert schnabel([(1, 0, 0)]) == 0.0

    def test_schnabel_known_value(self):
        # C_t * M_t = 10*20, recaptures 4 -> 200/5.
        assert schnabel([(10, 20, 4)]) == pytest.approx(40.0)

    def test_schnabel_accumulates(self):
        occasions = [(1, 0, 0), (1, 1, 0), (1, 2, 1), (1, 2, 0)]
        expected = (0 + 1 + 2 + 2) / (1 + 1)
        assert schnabel(occasions) == pytest.approx(expected)


class TestEstimator:
    def _run(self, m=150, samples=40, seed=5):
        table = boolean_table(m, [0.5] * 9, seed=seed)
        client = HiddenDBClient(
            TopKInterface(table, k=4, counter=QueryCounter()), cache=False
        )
        sampler = HiddenDBSampler(client, seed=seed + 1)
        return CaptureRecaptureEstimator(sampler).run(samples=samples)

    def test_produces_positive_estimate(self):
        result = self._run()
        assert result.estimate > 0
        assert result.samples == 40
        assert result.distinct <= 40

    def test_trajectory_tracks_samples(self):
        result = self._run(samples=25)
        assert len(result.trajectory) == 25
        assert result.trajectory.xs == sorted(result.trajectory.xs)

    def test_estimate_order_of_magnitude(self):
        # With enough recaptures the estimate lands within a generous
        # factor of the truth (it is *biased*, not arbitrary).
        result = self._run(m=100, samples=80, seed=9)
        assert 20 <= result.estimate <= 1000

    def test_budget_mode(self):
        table = boolean_table(150, [0.5] * 9, seed=10)
        client = HiddenDBClient(
            TopKInterface(table, k=4, counter=QueryCounter(limit=200)),
            cache=False,
        )
        sampler = HiddenDBSampler(client, seed=11)
        result = CaptureRecaptureEstimator(sampler).run(query_budget=200)
        assert result.total_cost <= 200
        assert result.samples >= 1
