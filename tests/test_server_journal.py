"""Restart semantics: the journal replays warm state exactly.

The battery simulates a server killed mid-queue by writing journals the
way a dying process would leave them — complete terminal records,
submit records with no matching end, a half-written trailing line — and
asserts a second life re-reports terminal jobs byte-identically,
re-admits or marks orphans, seeds only epoch-version-exact cache
entries, and never re-queries the hidden database for replayed results.
"""

import json
import os

import pytest

from repro.api import (
    DatasetSpec,
    Estimation,
    EstimationSpec,
    RegimeSpec,
    TargetSpec,
)
from repro.server import FRESH_VERSION, Journal, OpError, ServiceProtocol
from repro.service import EstimationService


def make_spec(seed=0, rounds=4, m=400, k=24, dataset_seed=3):
    return EstimationSpec(
        target=TargetSpec(
            dataset=DatasetSpec(name="iid", m=m, seed=dataset_seed), k=k
        ),
        regime=RegimeSpec(rounds=rounds, seed=seed),
    )


def canonical(record):
    return json.dumps(record, sort_keys=True, allow_nan=False) + "\n"


def submit_record(job_id, spec, tenant="default", stream=False):
    return canonical({
        "kind": "submit", "job": job_id, "tenant": tenant,
        "stream": stream, "spec": spec.to_dict(),
    })


#: Orphan ids far above anything the in-process id counter
#: reaches during the suite (ids are global, tests share the counter).
ORPHAN_PLAIN = 10_097
ORPHAN_STREAM = 10_098


@pytest.fixture()
def journal_path(tmp_path):
    return str(tmp_path / "server.journal")


class TestJournalParsing:
    def test_missing_file_is_empty_state(self, journal_path):
        state = Journal.load(journal_path)
        assert state.terminal == {} and state.orphans == []
        assert state.cache_entries == [] and state.max_job_id == 0

    def test_truncated_and_garbage_lines_are_skipped(self, journal_path):
        with open(journal_path, "w") as fh:
            fh.write("not json at all\n")
            fh.write(canonical({"kind": "wat"}))
            fh.write(canonical({"kind": "submit"}))  # no job id
            fh.write(submit_record(4, make_spec()))
            fh.write('{"kind": "submit", "job": 5, "ten')  # the kill
        state = Journal.load(journal_path)
        assert state.corrupt_lines == 4
        assert [o["job"] for o in state.orphans] == [4]
        assert state.max_job_id == 4

    def test_cache_filtering_is_epoch_version_exact(self, journal_path):
        with open(journal_path, "w") as fh:
            fh.write(canonical({
                "kind": "cache", "token": "dataset:iid:400:3",
                "version": FRESH_VERSION, "spec": "{}", "report": "{}",
            }))
            fh.write(canonical({
                "kind": "cache", "token": "dataset:iid:400:3",
                "version": FRESH_VERSION + 2, "spec": '{"x": 1}',
                "report": "{}",
            }))
            fh.write(canonical({
                "kind": "cache", "token": "injected:deadbeef",
                "version": FRESH_VERSION, "spec": "{}", "report": "{}",
            }))
        state = Journal.load(journal_path)
        assert len(state.cache_entries) == 1
        assert state.cache_entries[0][2] == FRESH_VERSION
        assert state.dropped_cache_stale == 1
        assert state.dropped_cache_injected == 1

    def test_last_cache_write_wins(self, journal_path):
        with open(journal_path, "w") as fh:
            for payload in ('{"v": "old"}', '{"v": "new"}'):
                fh.write(canonical({
                    "kind": "cache", "token": "dataset:t", "version": 0,
                    "spec": "{}", "report": payload,
                }))
        state = Journal.load(journal_path)
        assert len(state.cache_entries) == 1
        assert state.cache_entries[0][3] == '{"v": "new"}'

    def test_open_compacts_to_live_state(self, journal_path):
        spec = make_spec()
        with open(journal_path, "w") as fh:
            fh.write(submit_record(1, spec))
            fh.write(canonical({
                "kind": "end", "job": 1, "mode": "static",
                "tenant": "default", "status": "done", "state": "done",
                "cached": False, "report": {"fake": True},
            }))
            fh.write(submit_record(2, spec, stream=True))  # orphan: dropped
            fh.write("garbage that the kill left behind")
        journal, state = Journal.open(journal_path)
        journal.close()
        lines = [json.loads(line) for line in open(journal_path)]
        # Compacted: exactly the terminal record survives on disk.
        assert [line["kind"] for line in lines] == ["end"]
        assert lines[0]["job"] == 1
        # ...while the parsed state still names the orphan for replay.
        assert [o["job"] for o in state.orphans] == [2]

    def test_appends_survive_a_reload(self, journal_path):
        journal, _ = Journal.open(journal_path)
        journal.record_cache("dataset:t", '{"s": 1}', 0, '{"r": 1}')
        journal.close()
        state = Journal.load(journal_path)
        assert state.cache_entries == [("dataset:t", '{"s": 1}', 0, '{"r": 1}')]

    def test_closed_journal_drops_writes(self, journal_path):
        journal, _ = Journal.open(journal_path)
        journal.close()
        journal.record_cache("dataset:t", "{}", 0, "{}")  # no raise
        assert Journal.load(journal_path).cache_entries == []


class TestRestartSemantics:
    def run_first_life(self, journal_path, spec):
        """Life 1: one job to terminal, then die with a queued orphan."""
        journal, state = Journal.open(journal_path)
        with EstimationService(workers=1) as service:
            protocol = ServiceProtocol(service, journal=journal)
            out = protocol.dispatch(
                {"op": "submit", "spec": spec.to_dict()}, "r1"
            )
            out.job.wait()
            report_json = out.job.report.to_json()
        # The kill: a submit with no end (queued when the process died),
        # plus a half-written line.  journal.close() never runs.
        with open(journal_path, "a") as fh:
            fh.write(submit_record(ORPHAN_PLAIN, spec))
            fh.write(submit_record(ORPHAN_STREAM, spec, stream=True))
            fh.write('{"kind": "end", "job": 10097, "sta')
        return out.job.id, report_json

    def second_life(self, journal_path, resubmit_orphans=True):
        journal, state = Journal.open(journal_path)
        service = EstimationService(workers=1)
        protocol = ServiceProtocol(service, journal=journal)
        stats = protocol.restore(state, resubmit_orphans=resubmit_orphans)
        return journal, service, protocol, stats

    def test_terminal_jobs_re_report_byte_identically(self, journal_path):
        spec = make_spec(seed=11)
        done_id, report_json = self.run_first_life(journal_path, spec)
        journal, service, protocol, stats = self.second_life(journal_path)
        try:
            assert stats["terminal_jobs"] == 1
            res = protocol.dispatch({"op": "result", "job": done_id}, "x")
            assert res.job is None
            assert res.response["status"] == "done"
            assert res.response["replayed"] is True
            assert (
                json.dumps(res.response["report"], sort_keys=True)
                == json.dumps(json.loads(report_json), sort_keys=True)
            )
        finally:
            service.close()
            journal.close()

    def test_orphans_readmit_and_serve_from_warm_cache(self, journal_path):
        """The acceptance criterion: a replayed result costs zero new
        hidden-database queries — the warm cache answers it."""
        spec = make_spec(seed=12)
        self.run_first_life(journal_path, spec)
        journal, service, protocol, stats = self.second_life(journal_path)
        try:
            assert stats["orphans_resubmitted"] == 1  # the non-streaming one
            assert stats["orphans_marked"] == 1       # the streaming one
            assert stats["cache_entries"] == 1
            res = protocol.dispatch({"op": "result", "job": ORPHAN_PLAIN}, "x")
            assert res.job is not None  # re-admitted under an alias
            res.job.wait()
            assert res.job.cached is True  # zero new queries: cache hit
            assert service.cache.report()["hits"] == 1
            assert service.cache.report()["misses"] == 0
            # The streaming orphan's snapshots are unrecoverable.
            marked = protocol.dispatch({"op": "result", "job": ORPHAN_STREAM}, "y")
            assert marked.response["status"] == "orphaned"
        finally:
            service.close()
            journal.close()

    def test_orphan_resubmission_can_be_disabled(self, journal_path):
        spec = make_spec(seed=13)
        self.run_first_life(journal_path, spec)
        journal, service, protocol, stats = self.second_life(
            journal_path, resubmit_orphans=False
        )
        try:
            assert stats["orphans_resubmitted"] == 0
            assert stats["orphans_marked"] == 2
            res = protocol.dispatch({"op": "result", "job": ORPHAN_PLAIN}, "x")
            assert res.response["status"] == "orphaned"
        finally:
            service.close()
            journal.close()

    def test_fresh_ids_never_collide_with_replayed_ids(self, journal_path):
        spec = make_spec(seed=14)
        self.run_first_life(journal_path, spec)
        journal, service, protocol, stats = self.second_life(journal_path)
        try:
            out = protocol.dispatch(
                {"op": "submit", "spec": make_spec(seed=15).to_dict()}, "n"
            )
            assert out.job.id > ORPHAN_STREAM  # past every journaled id
            out.job.wait()
        finally:
            service.close()
            journal.close()

    def test_stale_epoch_cache_entries_are_dropped_on_replay(
        self, journal_path
    ):
        spec = make_spec(seed=16)
        journal, state = Journal.open(journal_path)
        with EstimationService(workers=1) as service:
            protocol = ServiceProtocol(service, journal=journal)
            out = protocol.dispatch(
                {"op": "submit", "spec": spec.to_dict()}, 1
            )
            out.job.wait()
            # Epoch bump, then a re-run caches at version 1 — that entry
            # must NOT survive a restart (the rebuilt table is pristine).
            protocol.dispatch(
                {"op": "update",
                 "dataset": {"name": "iid", "m": 400, "seed": 3},
                 "deletes": [0]},
                2,
            )
            out2 = protocol.dispatch(
                {"op": "submit", "spec": spec.to_dict()}, 3
            )
            out2.job.wait()
        journal.close()
        journal2, state2 = Journal.open(journal_path)
        journal2.close()
        assert state2.dropped_cache_stale >= 1
        assert all(
            entry[2] == FRESH_VERSION for entry in state2.cache_entries
        )

    def test_replayed_failure_re_reports_as_error(self, journal_path):
        with open(journal_path, "w") as fh:
            fh.write(canonical({
                "kind": "end", "job": 5, "mode": "static",
                "tenant": "default", "status": "error", "state": "failed",
                "error": "boom",
            }))
        journal, service, protocol, stats = self.second_life(journal_path)
        try:
            res = protocol.dispatch({"op": "result", "job": 5}, "x")
            assert res.response["status"] == "error"
            assert res.response["error"] == "boom"
            assert res.response["replayed"] is True
            # Unknown ids still refuse after a replay.
            with pytest.raises(OpError, match="unknown job"):
                protocol.dispatch({"op": "result", "job": 6}, "x")
        finally:
            service.close()
            journal.close()

    def test_second_life_compaction_is_idempotent(self, journal_path):
        spec = make_spec(seed=17)
        self.run_first_life(journal_path, spec)
        journal, service, protocol, stats = self.second_life(journal_path)
        service.close()
        journal.close()
        before = os.path.getsize(journal_path)
        # A third open replays the same state and does not grow the file.
        journal3, state3 = Journal.open(journal_path)
        journal3.close()
        assert os.path.getsize(journal_path) <= before
        assert len(state3.terminal) >= 1
