"""Unit tests for the online form simulator."""

import pytest

from repro.datasets import yahoo_auto
from repro.hidden_db import (
    ConjunctiveQuery,
    HiddenDBClient,
    OnlineFormSimulator,
    QueryLimitExceeded,
    QueryRejected,
    TopKInterface,
)


@pytest.fixture(scope="module")
def table():
    return yahoo_auto(m=800, seed=5)


def simulator(table, daily_limit=10):
    iface = TopKInterface(table, k=20)
    make_idx = table.schema.index_of("MAKE")
    model_idx = table.schema.index_of("MODEL")
    return OnlineFormSimulator(
        iface, required_attributes=(make_idx, model_idx), daily_limit=daily_limit
    )


class TestRequiredAttributes:
    def test_rejects_query_without_required_attribute(self, table):
        sim = simulator(table)
        with pytest.raises(QueryRejected):
            sim.query(ConjunctiveQuery())

    def test_accepts_query_with_make(self, table):
        sim = simulator(table)
        make_idx = table.schema.index_of("MAKE")
        result = sim.query(ConjunctiveQuery().extended(make_idx, 0))
        assert result is not None

    def test_accepts_query_with_model_only(self, table):
        sim = simulator(table)
        model_idx = table.schema.index_of("MODEL")
        sim.query(ConjunctiveQuery().extended(model_idx, 0))
        assert sim.total_issued == 1

    def test_rejected_queries_are_not_charged(self, table):
        sim = simulator(table)
        with pytest.raises(QueryRejected):
            sim.query(ConjunctiveQuery())
        assert sim.total_issued == 0

    def test_no_required_attributes_accepts_root(self, table):
        sim = OnlineFormSimulator(TopKInterface(table, k=20), daily_limit=5)
        assert sim.query(ConjunctiveQuery()) is not None


class TestDailyLimit:
    def test_limit_enforced(self, table):
        sim = simulator(table, daily_limit=3)
        make_idx = table.schema.index_of("MAKE")
        for value in range(3):
            sim.query(ConjunctiveQuery().extended(make_idx, value))
        with pytest.raises(QueryLimitExceeded):
            sim.query(ConjunctiveQuery().extended(make_idx, 3))

    def test_advance_day_refreshes_quota(self, table):
        sim = simulator(table, daily_limit=2)
        make_idx = table.schema.index_of("MAKE")
        sim.query(ConjunctiveQuery().extended(make_idx, 0))
        sim.query(ConjunctiveQuery().extended(make_idx, 1))
        sim.advance_day()
        sim.query(ConjunctiveQuery().extended(make_idx, 2))
        assert sim.day == 1
        assert sim.total_issued == 3

    def test_client_cost_uses_lifetime_total(self, table):
        sim = simulator(table, daily_limit=2)
        client = HiddenDBClient(sim)
        make_idx = table.schema.index_of("MAKE")
        client.query(ConjunctiveQuery().extended(make_idx, 0))
        client.query(ConjunctiveQuery().extended(make_idx, 1))
        sim.advance_day()
        client.query(ConjunctiveQuery().extended(make_idx, 2))
        assert client.cost == 3  # not reset by the new day

    def test_unlimited_daily_quota(self, table):
        sim = simulator(table, daily_limit=None)
        make_idx = table.schema.index_of("MAKE")
        for value in range(16):
            sim.query(ConjunctiveQuery().extended(make_idx, value))
        assert sim.total_issued == 16
