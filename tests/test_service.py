"""Unit tests for the service layer: jobs, scheduler, cache, admission."""

import threading

import pytest

from repro.api import DatasetSpec, Estimation, EstimationSpec, RegimeSpec, TargetSpec
from repro.api.report import AggregateReport
from repro.core.budget import QueryBudget
from repro.service import (
    AdmissionRefused,
    EstimationService,
    Job,
    JobCancelled,
    JobScheduler,
    ResultCache,
    TenantBudgets,
)


def make_spec(seed=0, rounds=4, m=400, k=24, dataset_seed=3, **regime):
    return EstimationSpec(
        target=TargetSpec(
            dataset=DatasetSpec(name="iid", m=m, seed=dataset_seed), k=k
        ),
        regime=RegimeSpec(rounds=rounds, seed=seed, **regime),
    )


def make_report(estimate=1.0):
    return AggregateReport(
        mode="static", estimate=estimate, std_error=0.1, ci95=(0.8, 1.2),
        rounds=4, total_queries=10, cost_units=10.0, stop_reason="rounds",
    )


class TestJob:
    def test_lifecycle_and_result(self):
        job = Job(make_spec())
        assert job.state == "queued" and not job.done
        assert job._start()
        assert job.state == "running"
        report = make_report()
        job._complete("done", report=report)
        assert job.done
        assert job.result(timeout=1) is report

    def test_result_timeout(self):
        job = Job(make_spec())
        with pytest.raises(TimeoutError):
            job.result(timeout=0.01)

    def test_queued_cancellation(self):
        job = Job(make_spec())
        assert job.cancel()
        assert job.state == "cancelled"
        assert not job._start()  # the runner must skip it
        with pytest.raises(JobCancelled):
            job.result(timeout=1)

    def test_failed_job_reraises(self):
        job = Job(make_spec())
        job._start()
        boom = ValueError("boom")
        job._complete("failed", error=boom)
        with pytest.raises(ValueError, match="boom"):
            job.result(timeout=1)

    def test_snapshot_fanout_replays_full_log(self):
        job = Job(make_spec(), stream=True)
        job._start()
        early = [make_report(i) for i in range(3)]
        for snapshot in early:
            job._push_snapshot(snapshot)
        job._complete("done", report=early[-1])
        # A subscriber arriving after completion still sees everything.
        assert [s.estimate for s in job.snapshots()] == [0.0, 1.0, 2.0]
        assert [s.estimate for s in job.snapshot_log] == [0.0, 1.0, 2.0]


class TestJobScheduler:
    def test_runs_jobs_and_counts_lifecycle(self):
        done = []

        def runner(job):
            job._start()
            job._complete("done", report=make_report(job.id))
            done.append(job.id)

        with JobScheduler(runner, workers=2) as scheduler:
            jobs = [scheduler.submit(Job(make_spec(seed=i))) for i in range(5)]
            for job in jobs:
                job.result(timeout=5)
        assert sorted(done) == sorted(j.id for j in jobs)
        report = scheduler.report()
        assert report["submitted"] == 5 and report["done"] == 5

    def test_runner_exception_fails_the_job(self):
        def runner(job):
            job._start()
            raise RuntimeError("runner bug")

        with JobScheduler(runner, workers=1) as scheduler:
            job = scheduler.submit(Job(make_spec()))
            with pytest.raises(RuntimeError, match="runner bug"):
                job.result(timeout=5)
        assert scheduler.report()["failed"] == 1

    def test_forgetful_runner_fails_the_job(self):
        with JobScheduler(lambda job: job._start(), workers=1) as scheduler:
            job = scheduler.submit(Job(make_spec()))
            with pytest.raises(RuntimeError, match="without finishing"):
                job.result(timeout=5)

    def test_closed_scheduler_refuses(self):
        scheduler = JobScheduler(lambda job: None, workers=1)
        scheduler.close()
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.submit(Job(make_spec()))

    def test_bounded_concurrency(self):
        gate = threading.Event()
        running = []

        def runner(job):
            job._start()
            running.append(job.id)
            gate.wait(5)
            job._complete("done", report=make_report())

        scheduler = JobScheduler(runner, workers=2)
        jobs = [scheduler.submit(Job(make_spec(seed=i))) for i in range(4)]
        for _ in range(100):
            if len(running) == 2:
                break
            threading.Event().wait(0.01)
        assert len(running) == 2  # pool bound holds; two stay queued
        gate.set()
        for job in jobs:
            job.result(timeout=5)
        scheduler.close()


class TestResultCache:
    def test_hit_requires_matching_version(self):
        cache = ResultCache(max_entries=4)
        cache.store("t", "spec", 0, make_report(42.0))
        hit = cache.lookup("t", "spec", 0)
        assert hit is not None and hit.estimate == 42.0
        assert cache.lookup("t", "spec", 1) is None  # stale: evicted
        assert cache.lookup("t", "spec", 0) is None  # really gone
        report = cache.report()
        assert report["hits"] == 1
        assert report["stale_evictions"] == 1
        assert report["entries"] == 0

    def test_hits_are_fresh_parses(self):
        cache = ResultCache()
        original = make_report(7.0)
        cache.store("t", "spec", 0, original)
        hit = cache.lookup("t", "spec", 0)
        assert hit is not original
        assert hit.to_json() == original.to_json()

    def test_lru_capacity_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.store("t", "a", 0, make_report(1))
        cache.store("t", "b", 0, make_report(2))
        assert cache.lookup("t", "a", 0) is not None  # refresh "a"
        cache.store("t", "c", 0, make_report(3))  # evicts LRU "b"
        assert cache.lookup("t", "b", 0) is None
        assert cache.lookup("t", "a", 0) is not None
        assert cache.report()["evictions"] == 1

    def test_invalidate_target_scopes_to_token(self):
        cache = ResultCache()
        cache.store("alpha", "s1", 0, make_report(1))
        cache.store("alpha", "s2", 0, make_report(2))
        cache.store("beta", "s1", 0, make_report(3))
        assert cache.invalidate_target("alpha") == 2
        assert cache.lookup("beta", "s1", 0) is not None
        assert cache.report()["stale_evictions"] == 2

    def test_restore_overwrites_in_place(self):
        cache = ResultCache(max_entries=2)
        cache.store("t", "a", 0, make_report(1))
        cache.store("t", "a", 1, make_report(2))
        assert len(cache) == 1
        assert cache.lookup("t", "a", 1).estimate == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestTenantBudgets:
    def test_refuses_once_ceiling_spent(self):
        budgets = TenantBudgets({"acme": 100})
        lease = budgets.admit("acme")
        budgets.settle("acme", lease, 120)  # jobs are atomic: overshoot ok
        with pytest.raises(AdmissionRefused, match="acme"):
            budgets.admit("acme")
        ledger = budgets.ledger("acme")
        assert ledger["spent"] == 120 and ledger["overshoot"] == 20

    def test_out_of_order_completion_settles_in_issuance_order(self):
        budgets = TenantBudgets({"t": 1_000})
        first, second, third = (budgets.admit("t") for _ in range(3))
        budgets.settle("t", third, 30)   # finishes first, settles last
        assert budgets.ledger("t")["spent"] == 0  # deferred
        budgets.settle("t", first, 10)
        assert budgets.ledger("t")["spent"] == 10  # third still waits
        budgets.settle("t", second, 20)
        assert budgets.ledger("t")["spent"] == 60  # pump drained the buffer
        assert budgets.ledger("t")["rounds_settled"] == 3

    def test_cancel_unblocks_the_pump(self):
        budgets = TenantBudgets({"t": 1_000})
        first, second = budgets.admit("t"), budgets.admit("t")
        budgets.settle("t", second, 20)
        budgets.cancel("t", first)  # failed job: no charge, pump advances
        ledger = budgets.ledger("t")
        assert ledger["spent"] == 20 and ledger["cancelled"] == 1

    def test_cancel_keeps_a_recorded_deferred_charge(self):
        # Lease 2's cost is recorded but deferred behind the still-open
        # lease 1; a late cancel (post-settle failure path) must not void
        # the real spend — the charge stands and settles in order.
        budgets = TenantBudgets({"t": 1_000})
        first, second = budgets.admit("t"), budgets.admit("t")
        budgets.settle("t", second, 60)  # deferred: first still open
        budgets.cancel("t", second)  # no-op — the recorded charge stands
        budgets.settle("t", first, 10)
        ledger = budgets.ledger("t")
        assert ledger["spent"] == 70
        assert ledger["rounds_settled"] == 2 and ledger["cancelled"] == 0

    def test_unlimited_default_tracks_spend(self):
        budgets = TenantBudgets()
        lease = budgets.admit("anyone")
        budgets.settle("anyone", lease, 55)
        ledger = budgets.ledger("anyone")
        assert ledger["total"] is None and ledger["spent"] == 55

    def test_default_ceiling_applies_to_unlisted_tenants(self):
        budgets = TenantBudgets({"vip": 10_000}, default_ceiling=50)
        lease = budgets.admit("walkin")
        budgets.settle("walkin", lease, 60)
        with pytest.raises(AdmissionRefused):
            budgets.admit("walkin")
        budgets.admit("vip")  # unaffected
        assert set(budgets.report()) == {"vip", "walkin"}


class TestEstimationService:
    def test_report_matches_sequential_facade(self):
        spec = make_spec(seed=5)
        expected = Estimation(spec).run().to_json()
        with EstimationService(workers=2) as service:
            assert service.submit(spec).result(60).to_json() == expected

    def test_cached_resubmission_is_free(self, monkeypatch):
        spec = make_spec(seed=6)
        with EstimationService(workers=1) as service:
            first = service.submit(spec).result(60)
            # From here on, any hidden-database query is an error.
            from repro.hidden_db.interface import TopKInterface

            def forbidden(self, q, count_only=False):
                raise AssertionError("cache hit must not query the database")

            monkeypatch.setattr(TopKInterface, "query", forbidden)
            job = service.submit(spec)
            again = job.result(60)
            assert job.cached
            assert again.to_json() == first.to_json()
            cache = service.metrics()["cache"]
            assert cache["hits"] == 1 and cache["misses"] == 1

    def test_streaming_job_fans_out_and_skips_cache(self):
        spec = make_spec(seed=7, rounds=5)
        with EstimationService(workers=1) as service:
            job = service.submit(spec, stream=True)
            snapshots = list(job.snapshots())
            final = job.result(60)
            assert len(snapshots) == 5
            assert all(s.partial for s in snapshots)
            assert not final.partial
            assert service.metrics()["cache"]["entries"] == 0

    def test_tenant_ceiling_refuses_after_spend(self):
        with EstimationService(
            workers=1, tenant_budgets={"acme": 1}
        ) as service:
            service.submit(make_spec(seed=1), tenant="acme").result(60)
            with pytest.raises(AdmissionRefused):
                for seed in range(20):
                    service.submit(
                        make_spec(seed=10 + seed), tenant="acme"
                    ).result(60)

    def test_failed_job_reraises_and_cancels_lease(self):
        spec = EstimationSpec(
            target=TargetSpec(dataset=DatasetSpec(name="custom"), k=8),
            regime=RegimeSpec(rounds=2, seed=0),
        )
        with EstimationService(workers=1) as service:
            job = service.submit(spec)  # custom dataset without a table
            with pytest.raises(ValueError, match="custom"):
                job.result(60)
            ledger = service.budgets.ledger("default")
            assert ledger["cancelled"] == 1 and ledger["spent"] == 0

    def test_injected_table_reports_and_caches(self, small_iid_table):
        spec = EstimationSpec(
            target=TargetSpec(dataset=DatasetSpec(name="custom"), k=24),
            regime=RegimeSpec(rounds=3, seed=2),
        )
        expected = Estimation(spec, table=small_iid_table).run().to_json()
        with EstimationService(workers=1) as service:
            job = service.submit(spec, table=small_iid_table)
            assert job.result(60).to_json() == expected
            repeat = service.submit(spec, table=small_iid_table)
            assert repeat.result(60).to_json() == expected
            assert repeat.cached

    def test_non_spec_submission_rejected(self):
        with EstimationService(workers=1) as service:
            with pytest.raises(TypeError, match="EstimationSpec"):
                service.submit({"target": {}})

    def test_run_many_orders_reports(self):
        specs = [make_spec(seed=s) for s in range(4)]
        expected = [Estimation(s).run().to_json() for s in specs]
        with EstimationService(workers=4) as service:
            got = [r.to_json() for r in service.run_many(specs)]
        assert got == expected

    def test_metrics_shape(self):
        with EstimationService(workers=1) as service:
            service.submit(make_spec(seed=3)).result(60)
            metrics = service.metrics()
        assert metrics["jobs"]["done"] == 1
        assert metrics["served_tables"] == 1
        assert "default" in metrics["tenants"]


class TestServiceHygiene:
    def test_concurrent_backends_share_one_family(self):
        # Racing first compiles of the same dataset under different
        # backends must produce ONE table family: an epoch bump has to
        # reach every backend's view, or a stale estimate gets cached.
        import threading

        with EstimationService(workers=2) as service:
            barrier = threading.Barrier(2)
            tables = {}

            def compile_for(backend):
                spec = EstimationSpec(
                    target=TargetSpec(
                        dataset=DatasetSpec(name="iid", m=400, seed=3),
                        k=24,
                        backend=backend,
                    ),
                    regime=RegimeSpec(rounds=2, seed=0),
                )
                barrier.wait(5)
                job = Job(spec)
                token, table, version = service._resolve_target(job)
                tables[backend] = table

            threads = [
                threading.Thread(target=compile_for, args=(backend,))
                for backend in ("scan", "bitmap")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(10)
            assert tables["scan"].version == tables["bitmap"].version == 0
            service.apply_updates(
                DatasetSpec(name="iid", m=400, seed=3), deletes=[0, 1]
            )
            assert tables["scan"].version == 1
            assert tables["bitmap"].version == 1  # same family root

    def test_submit_after_close_cancels_the_lease(self):
        service = EstimationService(workers=1, tenant_budgets={"t": 100})
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(make_spec(), tenant="t")
        ledger = service.budgets.ledger("t")
        # The refused hand-off voided its lease: the settlement pump is
        # not stalled and the tenant is not charged.
        assert ledger["cancelled"] == 1 and ledger["spent"] == 0

    def test_failure_after_settlement_keeps_the_original_error(
        self, monkeypatch
    ):
        # An exception raised after the tenant lease settled (e.g. in the
        # cache store) must surface itself — not a bookkeeping error
        # about cancelling an already-settled lease.
        with EstimationService(workers=1) as service:
            def boom(*args, **kwargs):
                raise RuntimeError("store boom")

            monkeypatch.setattr(service.cache, "store", boom)
            job = service.submit(make_spec(seed=11))
            with pytest.raises(RuntimeError, match="store boom"):
                job.result(60)

    def test_tracker_close_releases_the_engine_pool(self):
        from repro.core.dynamic import build_tracker
        from repro.datasets import bool_iid

        estimator, churn_gen, table = build_tracker(
            bool_iid(m=128, n=9, seed=1),
            churn=0.05, policy="reissue", k=16, rounds=6, workers=2,
            seed=3, churn_seed=0,
        )
        estimator.step()
        session = estimator._engine_session
        assert session is not None and session._pool is not None
        estimator.close()
        assert estimator._engine_session is None
        assert session._pool is None

    def test_terminal_jobs_are_released_but_still_counted(self):
        with EstimationService(workers=1) as service:
            jobs = [service.submit(make_spec(seed=s)) for s in range(3)]
            for job in jobs:
                job.result(60)
            report = service.scheduler.report()
            assert report["submitted"] == 3 and report["done"] == 3
            # The registry holds in-flight jobs only — history is counters.
            assert service.scheduler.job(jobs[0].id) is None
            assert len(service.scheduler._jobs) == 0

    def test_injected_table_with_churn_refused(self, small_iid_table):
        from repro.api import ChurnSpec

        spec = EstimationSpec(
            target=TargetSpec(
                dataset=DatasetSpec(name="custom"),
                k=24,
                churn=ChurnSpec(epochs=2, rate=0.05),
            ),
            regime=RegimeSpec(rounds=4, seed=1),
        )
        with EstimationService(workers=1) as service:
            with pytest.raises(ValueError, match="private table copy"):
                service.submit(spec, table=small_iid_table)

    def test_cancelled_stream_settles_its_real_spend(self):
        with EstimationService(
            workers=1, tenant_budgets={"t": 10_000}
        ) as service:
            job = service.submit(make_spec(seed=4, rounds=6),
                                 tenant="t", stream=True)
            for i, _snapshot in enumerate(job.snapshots()):
                if i == 1:
                    job.cancel()
            job.wait(60)
            assert job.state == "cancelled"
            assert job.report is not None  # partial result delivered
            ledger = service.budgets.ledger("t")
            # The queries the stream issued are charged, not voided.
            assert ledger["spent"] == job.report.cost_units > 0
            assert ledger["cancelled"] == 0

    def test_injected_targets_do_not_pin_the_service(self, small_iid_table):
        import gc
        import weakref

        spec = EstimationSpec(
            target=TargetSpec(dataset=DatasetSpec(name="custom"), k=24),
            regime=RegimeSpec(rounds=2, seed=1),
        )
        service = EstimationService(workers=1)
        service.submit(spec, table=small_iid_table).result(60)
        service.close()
        ref = weakref.ref(service)
        del service
        gc.collect()
        # The session-scoped table outlives the service; its anon-token
        # finalizer must not keep the service (and its cache) alive.
        assert ref() is None


class TestSubmitManyFacade:
    def test_matches_sequential_runs(self):
        specs = [make_spec(seed=s) for s in range(3)]
        expected = [Estimation(s).run().to_json() for s in specs]
        reports = Estimation.submit_many(specs, workers=3)
        assert [r.to_json() for r in reports] == expected

    def test_duplicate_specs_share_cache(self):
        spec = make_spec(seed=9)
        reports = Estimation.submit_many([spec, spec], workers=1)
        assert reports[0].to_json() == reports[1].to_json()


class TestBudgetNextSettleIndex:
    def test_tracks_the_settlement_cursor(self):
        budget = QueryBudget(100)
        assert budget.next_settle_index is None
        first, second = budget.lease(), budget.lease()
        assert budget.next_settle_index == 0
        budget.settle(first, 10)
        assert budget.next_settle_index == 1
        budget.cancel(second)
        assert budget.next_settle_index is None
