"""Unit tests for the synthetic Yahoo! Auto generator."""

import numpy as np
import pytest

from repro.datasets import (
    CATEGORICAL_SPECS,
    MAKES,
    OPTION_NAMES,
    model_label,
    yahoo_auto,
    yahoo_auto_schema,
)


@pytest.fixture(scope="module")
def table():
    return yahoo_auto(m=4_000, seed=13)


class TestSchema:
    def test_38_searchable_attributes(self):
        schema = yahoo_auto_schema()
        assert len(schema) == 38
        booleans = [a for a in schema if a.is_boolean]
        assert len(booleans) == 32

    def test_categorical_domains_between_5_and_16(self):
        schema = yahoo_auto_schema()
        for name, size in CATEGORICAL_SPECS:
            assert 5 <= schema.attribute(name).domain_size <= 16
            assert schema.attribute(name).domain_size == size

    def test_measures(self):
        schema = yahoo_auto_schema()
        assert set(schema.measure_names) == {"PRICE", "MILEAGE", "YEAR"}

    def test_option_names_all_boolean(self):
        schema = yahoo_auto_schema()
        for name in OPTION_NAMES:
            assert schema.attribute(name).is_boolean

    def test_make_labels(self):
        schema = yahoo_auto_schema()
        assert schema.attribute("MAKE").label_of(0) == "Toyota"
        assert schema.attribute("MAKE").value_of("Ford") == 1

    def test_model_labels_resolve_per_make(self):
        assert model_label(MAKES.index("Toyota"), 0) == "Corolla"
        assert model_label(MAKES.index("Ford"), 0) == "F-150"
        assert model_label(MAKES.index("Ford"), 1) == "Escape"
        assert model_label(MAKES.index("Kia"), 0) == "Model-1"


class TestGeneration:
    def test_size_and_uniqueness(self, table):
        assert table.num_tuples == 4_000
        assert np.unique(table.data, axis=0).shape[0] == 4_000

    def test_deterministic(self):
        a = yahoo_auto(m=500, seed=3)
        b = yahoo_auto(m=500, seed=3)
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(a.measure("PRICE"), b.measure("PRICE"))

    def test_make_distribution_is_skewed(self, table):
        make = table.data[:, 0]
        counts = np.bincount(make, minlength=16)
        assert counts.max() > 3 * max(counts.min(), 1)

    def test_model_depends_on_make(self, table):
        # The top model slot of two different makes should differ: the
        # conditional model distributions are rotated per make.
        make = table.data[:, 0]
        model = table.data[:, 1]
        top_slots = []
        for mk in range(2):
            slots = model[make == mk]
            if slots.size:
                top_slots.append(int(np.bincount(slots, minlength=16).argmax()))
        assert len(set(top_slots)) > 1

    def test_price_positive_and_luxury_correlated(self, table):
        price = table.measure("PRICE")
        assert (price > 0).all()
        make = table.data[:, 0]
        bmw, kia = MAKES.index("BMW"), MAKES.index("Kia")
        if (make == bmw).sum() > 10 and (make == kia).sum() > 10:
            assert price[make == bmw].mean() > price[make == kia].mean()

    def test_year_range(self, table):
        year = table.measure("YEAR")
        assert year.min() >= 1998 and year.max() <= 2007

    def test_mileage_positive(self, table):
        assert (table.measure("MILEAGE") > 0).all()

    def test_common_options_more_frequent_than_rare(self, table):
        schema = table.schema
        ac = table.data[:, schema.index_of("AC")].mean()
        nav = table.data[:, schema.index_of("NAV_SYSTEM")].mean()
        assert ac > nav

    def test_domain_vastly_exceeds_size(self, table):
        assert table.schema.domain_size() > 10**9 * table.num_tuples
