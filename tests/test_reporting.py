"""Unit tests for result persistence and rendering."""

import json

import pytest

from repro.experiments.figures.base import FigureResult
from repro.experiments.reporting import (
    load_result,
    load_results,
    save_result,
    save_results,
    to_markdown,
)


@pytest.fixture()
def result():
    return FigureResult(
        figure_id="figX",
        title="demo figure",
        columns=["cost", "mse"],
        rows=[(100, 1.5), (200, 0.5)],
        notes="a note",
        meta={"seed": 1},
    )


class TestRoundTrip:
    def test_save_and_load(self, result, tmp_path):
        path = save_result(result, tmp_path)
        assert path.name == "figX.json"
        loaded = load_result(path)
        assert loaded.figure_id == result.figure_id
        assert loaded.columns == result.columns
        assert [tuple(r) for r in loaded.rows] == result.rows
        assert loaded.notes == result.notes
        assert loaded.meta == result.meta

    def test_save_creates_directory(self, result, tmp_path):
        nested = tmp_path / "a" / "b"
        path = save_result(result, nested)
        assert path.exists()

    def test_json_is_valid(self, result, tmp_path):
        path = save_result(result, tmp_path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["figure_id"] == "figX"

    def test_batch_roundtrip(self, result, tmp_path):
        other = FigureResult("figY", "other", ["a"], [(1,)])
        paths = save_results([result, other], tmp_path)
        assert len(paths) == 2
        loaded = load_results(tmp_path)
        assert set(loaded) == {"figX", "figY"}

    def test_load_results_empty_dir(self, tmp_path):
        assert load_results(tmp_path) == {}


class TestMarkdown:
    def test_table_structure(self, result):
        md = to_markdown(result)
        lines = md.splitlines()
        assert lines[0].startswith("### figX")
        assert "| cost | mse |" in md
        assert "| 100 | 1.5 |" in md
        assert md.rstrip().endswith("*a note*")

    def test_without_notes(self):
        result = FigureResult("f", "t", ["x"], [(1,)])
        md = to_markdown(result)
        assert "*" not in md.splitlines()[-1]


class TestEndToEnd:
    def test_real_figure_roundtrip(self, tmp_path):
        from repro.experiments.figures import run_fig18

        result = run_fig18(scale="tiny", seed=6)
        path = save_result(result, tmp_path)
        loaded = load_result(path)
        assert loaded.column("true_count") == result.column("true_count")
        assert "fig18" in to_markdown(loaded)
